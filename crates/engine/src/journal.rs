//! Append-only sweep journal: checkpoint/resume for long sweeps.
//!
//! A journal is a JSONL file of completed job results, one object per line:
//!
//! ```text
//! {"key":"<16-hex-digit content hash>","value":{...job-specific...}}
//! ```
//!
//! Keys are content hashes of everything that determines a job's result
//! (policy tag, cache configuration, trace digest — see [`job_key`] and
//! [`trace_digest`]), so a journal is safe to reuse across runs: a changed
//! input changes the key and simply misses. Records are appended and flushed
//! as each job finishes; loading is *lenient* — a corrupt or partial
//! trailing line (the signature of `kill -9` mid-append) is dropped, not
//! fatal — so an interrupted sweep resumes from every record that made it to
//! disk.
//!
//! # Durability
//!
//! Every record carries a trailing `"sum"` field: the FNV-1a hash of the
//! exact bytes that precede it on the line. Replay validates the checksum,
//! so a record corrupted *in place* (a flipped bit that still parses as
//! JSON — the one failure mode a torn-tail heuristic cannot see) is dropped
//! and counted in [`Journal::checksum_mismatches`] instead of silently
//! warm-booting a wrong result. Records written before checksums existed
//! have no `"sum"` field; they are accepted and counted in
//! [`Journal::unchecksummed`] for back-compat.
//!
//! How far a record travels toward the platter before `record` returns is
//! the [`SyncPolicy`]: [`SyncPolicy::Flush`] (the default) drains the
//! user-space buffer to the OS — surviving a process `kill -9` but not a
//! power loss — while [`SyncPolicy::Fsync`] adds `fdatasync`, surviving
//! both at the cost of one disk round-trip per record.
//!
//! Drivers install a process-wide journal once after argument parsing
//! ([`set_global_journal`]); deep call sites consult it through
//! [`with_global_journal`] without any plumbing, mirroring how
//! [`crate::set_default_jobs`] distributes the worker count.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dynex_obs::json::{self, Json};

/// 64-bit FNV-1a hash — the workspace's dependency-free content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content digest of a reference stream (length-prefixed FNV-1a over the
/// little-endian words), used inside journal keys so a record can never be
/// replayed against a different trace.
pub fn trace_digest(addrs: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in (addrs.len() as u64).to_le_bytes() {
        step(b);
    }
    for &a in addrs {
        for b in a.to_le_bytes() {
            step(b);
        }
    }
    hash
}

/// Builds a journal key from the parts that determine a job's result.
///
/// Parts are hashed with a separator so `["ab", "c"]` and `["a", "bc"]`
/// produce different keys. The key is the hash in fixed-width hex.
pub fn job_key(parts: &[&str]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x1f; // unit separator: keeps part boundaries in the hash
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// A journal operation failure.
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be opened, read, or appended to.
    Io {
        /// The journal path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A value passed to [`Journal::record`] was not a valid JSON document.
    BadValue {
        /// The parse failure, with offset.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::BadValue { message } => {
                write!(f, "journal record is not valid JSON: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::BadValue { .. } => None,
        }
    }
}

/// How far [`Journal::record`] pushes a record toward stable storage
/// before returning (module docs weigh the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Drain the user-space buffer to the OS (`flush`). A `kill -9` after
    /// `record` returns cannot lose the record; an OS crash or power loss
    /// can. The default.
    #[default]
    Flush,
    /// Additionally `fdatasync` the file per record: the record survives
    /// power loss, at one storage round-trip per append.
    Fsync,
}

impl SyncPolicy {
    /// Parses a `--journal-sync` flag value.
    pub fn parse(value: &str) -> Result<SyncPolicy, String> {
        match value {
            "flush" => Ok(SyncPolicy::Flush),
            "fsync" => Ok(SyncPolicy::Fsync),
            other => Err(format!(
                "bad journal sync policy {other:?} (want flush or fsync)"
            )),
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Flush => write!(f, "flush"),
            SyncPolicy::Fsync => write!(f, "fsync"),
        }
    }
}

/// The record suffix that carries the line checksum: `…,"sum":"<16hex>"}`.
const SUM_MARKER: &str = ",\"sum\":\"";

/// The checksum written into a record line: FNV-1a over every byte of the
/// line before its `,"sum":"…"}` suffix, in fixed-width hex.
fn line_checksum(prefix: &str) -> String {
    format!("{:016x}", fnv1a(prefix.as_bytes()))
}

/// An append-only JSONL checkpoint of completed job results.
///
/// # Examples
///
/// ```no_run
/// use dynex_engine::{job_key, Journal};
///
/// let mut journal = Journal::open("sweep.journal")?;
/// let key = job_key(&["fig5/de", "config...", "trace:abc"]);
/// if journal.lookup(&key).is_none() {
///     // ...run the job...
///     journal.record(&key, r#"{"misses":42}"#)?;
/// }
/// # Ok::<(), dynex_engine::JournalError>(())
/// ```
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    entries: HashMap<String, Json>,
    dropped_lines: u64,
    duplicate_keys: u64,
    checksum_mismatches: u64,
    unchecksummed: u64,
    replayed: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path` with the default
    /// [`SyncPolicy::Flush`]; see [`Journal::open_with`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Journal, JournalError> {
        Journal::open_with(path, SyncPolicy::Flush)
    }

    /// Opens (or creates) the journal at `path`, loading every intact
    /// record. Corrupt or partial lines — e.g. the torn tail left by a kill
    /// mid-append — are dropped and counted in
    /// [`Journal::dropped_lines`], never fatal; a parseable record whose
    /// `"sum"` checksum does not match its bytes is dropped and counted in
    /// [`Journal::checksum_mismatches`].
    pub fn open_with<P: AsRef<Path>>(path: P, sync: SyncPolicy) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |source| JournalError::Io {
            path: path.clone(),
            source,
        };
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;

        let data = std::fs::read(&path).map_err(io_err)?;
        // Heal a torn tail: if the last append was cut off before its
        // newline, start the next record on a fresh line instead of
        // concatenating onto (and thereby corrupting) a new record.
        if data.last().is_some_and(|&b| b != b'\n') {
            file.write_all(b"\n").map_err(io_err)?;
        }

        let mut entries = HashMap::new();
        let mut dropped_lines = 0u64;
        let mut duplicate_keys = 0u64;
        let mut checksum_mismatches = 0u64;
        let mut unchecksummed = 0u64;
        for line in String::from_utf8_lossy(&data).lines() {
            if line.trim().is_empty() {
                continue;
            }
            // Checksum validation runs on the raw bytes, before parsing:
            // the writer always puts `"sum"` last, so the final marker on
            // the line splits the covered prefix from the checksum. A line
            // without the marker predates checksums — tolerated (and, when
            // it holds an accepted record, counted below).
            let has_sum = match line.rfind(SUM_MARKER) {
                Some(at) => {
                    let expected = line[at + SUM_MARKER.len()..].trim_end_matches("\"}");
                    if line_checksum(&line[..at]) != expected {
                        checksum_mismatches += 1;
                        continue;
                    }
                    true
                }
                None => false,
            };
            // Lenient load: anything that is not a well-formed record is a
            // torn write — skip it so resume still works.
            let record = match json::parse(line) {
                Ok(v) => v,
                Err(_) => {
                    dropped_lines += 1;
                    continue;
                }
            };
            match (
                record.get("key").and_then(Json::as_str),
                record.get("value"),
            ) {
                (Some(key), Some(value)) => {
                    // Dedup-on-replay guard: an append-only file legitimately
                    // accumulates repeated keys (re-recorded results, two
                    // runs racing on one journal before per-shard fan-out
                    // existed). Replay keeps the *last* record per key — the
                    // newest write — and counts the shadowed ones so bulk
                    // consumers ([`Journal::entries`]) can never observe a
                    // key twice.
                    if entries.insert(key.to_owned(), value.clone()).is_some() {
                        duplicate_keys += 1;
                    }
                    if !has_sum {
                        unchecksummed += 1;
                    }
                }
                _ => dropped_lines += 1,
            }
        }

        Ok(Journal {
            path,
            file,
            sync,
            entries,
            dropped_lines,
            duplicate_keys,
            checksum_mismatches,
            unchecksummed,
            replayed: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records currently held (loaded at open + recorded since).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Corrupt/partial lines dropped while loading.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped_lines
    }

    /// Well-formed records that were shadowed by a later record with the
    /// same key while loading (see the dedup-on-replay guard in
    /// [`Journal::open`]). Zero on a journal that never re-recorded a key.
    pub fn duplicate_keys(&self) -> u64 {
        self.duplicate_keys
    }

    /// Records dropped at load because their `"sum"` checksum did not match
    /// their bytes — in-place corruption, not a torn tail.
    pub fn checksum_mismatches(&self) -> u64 {
        self.checksum_mismatches
    }

    /// Accepted records that carried no `"sum"` field (written before
    /// checksums existed). Tolerated for back-compat, surfaced so an
    /// operator can see how much of a warm boot is unverifiable.
    pub fn unchecksummed(&self) -> u64 {
        self.unchecksummed
    }

    /// The journal's [`SyncPolicy`].
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Changes how far [`Journal::record`] pushes records toward stable
    /// storage from now on.
    pub fn set_sync_policy(&mut self, sync: SyncPolicy) {
        self.sync = sync;
    }

    /// Lookups served from the journal since it was opened.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Iterates over every `(key, value)` record currently held, in
    /// unspecified order. Each key appears exactly once even when the
    /// on-disk file holds repeated appends for it — replay keeps the last
    /// record per key ([`Journal::duplicate_keys`] counts the shadowed
    /// ones). Unlike [`Journal::lookup`] this does not count toward
    /// [`Journal::replayed`] — it exists for bulk consumers (e.g.
    /// warm-starting a result cache from a journal at service boot).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns the recorded value for `key`, if any, counting the hit in
    /// [`Journal::replayed`].
    pub fn lookup(&mut self, key: &str) -> Option<Json> {
        let hit = self.entries.get(key).cloned();
        if hit.is_some() {
            self.replayed += 1;
        }
        hit
    }

    /// Appends a record — with its `"sum"` line checksum — and pushes it
    /// toward disk per the journal's [`SyncPolicy`] before returning, so a
    /// crash after `record` never loses the result. `value_json` must be
    /// one complete JSON document.
    pub fn record(&mut self, key: &str, value_json: &str) -> Result<(), JournalError> {
        let value = json::parse(value_json).map_err(|e| JournalError::BadValue {
            message: e.to_string(),
        })?;
        let prefix = format!(
            "{{\"key\":\"{}\",\"value\":{}",
            json::escape(key),
            value_json
        );
        let line = format!("{prefix}{SUM_MARKER}{}\"}}\n", line_checksum(&prefix));
        let io_err = |source| JournalError::Io {
            path: self.path.clone(),
            source,
        };
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        if self.sync == SyncPolicy::Fsync {
            self.file.sync_data().map_err(io_err)?;
        }
        self.entries.insert(key.to_owned(), value);
        Ok(())
    }
}

/// Process-wide journal installed by the driver; `None` when resume is off.
static GLOBAL_JOURNAL: Mutex<Option<Journal>> = Mutex::new(None);

/// Installs (or clears, with `None`) the process-wide journal consulted by
/// [`with_global_journal`]. Drivers call this once after parsing
/// `--resume <path>`.
pub fn set_global_journal(journal: Option<Journal>) {
    *GLOBAL_JOURNAL.lock().expect("journal lock") = journal;
}

/// Runs `f` against the process-wide journal, returning `None` when no
/// journal is installed. Deep call sites (figure sweeps) use this to consult
/// the checkpoint without threading a handle through every signature.
pub fn with_global_journal<R>(f: impl FnOnce(&mut Journal) -> R) -> Option<R> {
    GLOBAL_JOURNAL.lock().expect("journal lock").as_mut().map(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "dynex-journal-{}-{tag}-{seq}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn trace_digest_separates_length_and_content() {
        assert_ne!(trace_digest(&[]), trace_digest(&[0]));
        assert_ne!(trace_digest(&[1, 2]), trace_digest(&[2, 1]));
        assert_eq!(trace_digest(&[1, 2, 3]), trace_digest(&[1, 2, 3]));
    }

    #[test]
    fn job_key_respects_part_boundaries() {
        assert_ne!(job_key(&["ab", "c"]), job_key(&["a", "bc"]));
        assert_ne!(job_key(&["a"]), job_key(&["a", ""]));
        assert_eq!(job_key(&["x", "y"]), job_key(&["x", "y"]));
        assert_eq!(job_key(&["x"]).len(), 16);
    }

    #[test]
    fn record_then_reopen_round_trips() {
        let path = temp_path("roundtrip");
        {
            let mut j = Journal::open(&path).unwrap();
            assert!(j.is_empty());
            j.record("k1", r#"{"misses":42,"accesses":100}"#).unwrap();
            j.record("k2", r#"[1,2]"#).unwrap();
            assert_eq!(j.len(), 2);
        }
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped_lines(), 0);
        let v = j.lookup("k1").unwrap();
        assert_eq!(v.get("misses").and_then(Json::as_u64), Some(42));
        assert_eq!(j.lookup("missing"), None);
        assert_eq!(j.replayed(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_dropped_not_fatal() {
        let path = temp_path("torn");
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("good", r#"{"v":1}"#).unwrap();
        }
        // Simulate a kill mid-append: a partial record with no closing brace.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\":\"half\",\"val").unwrap();
        }
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.dropped_lines(), 1);
        assert!(j.lookup("good").is_some());
        assert!(j.lookup("half").is_none());
        // Appending after recovery still works and lands on its own line.
        j.record("later", r#"{"v":2}"#).unwrap();
        drop(j);
        let mut j = Journal::open(&path).unwrap();
        assert!(j.lookup("later").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_rejects_malformed_values() {
        let path = temp_path("badvalue");
        let mut j = Journal::open(&path).unwrap();
        let err = j.record("k", "{not json").unwrap_err();
        assert!(matches!(err, JournalError::BadValue { .. }));
        assert!(j.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_keys_last_write_wins_on_reload() {
        let path = temp_path("dup");
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("k", r#"{"v":1}"#).unwrap();
            j.record("k", r#"{"v":2}"#).unwrap();
        }
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.duplicate_keys(), 1);
        let v = j.lookup("k").unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn entries_never_yields_a_key_twice_even_with_raw_duplicate_lines() {
        // Regression test for the dedup-on-replay guard: hand-write the
        // JSONL (bypassing record()) the way an older run, a crashed
        // re-record, or two processes appending to one file would leave it.
        let path = temp_path("rawdup");
        std::fs::write(
            &path,
            concat!(
                "{\"key\":\"a\",\"value\":{\"v\":1}}\n",
                "{\"key\":\"b\",\"value\":{\"v\":10}}\n",
                "{\"key\":\"a\",\"value\":{\"v\":2}}\n",
                "{\"key\":\"a\",\"value\":{\"v\":3}}\n",
            ),
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.duplicate_keys(), 2);
        assert_eq!(j.dropped_lines(), 0);
        // entries() is the warm-boot path: each key exactly once, the last
        // on-disk record winning.
        let mut seen = std::collections::HashMap::new();
        for (key, value) in j.entries() {
            let prior = seen.insert(key.to_owned(), value.clone());
            assert!(prior.is_none(), "entries() yielded key {key:?} twice");
        }
        assert_eq!(seen["a"].get("v").and_then(Json::as_u64), Some(3));
        assert_eq!(seen["b"].get("v").and_then(Json::as_u64), Some(10));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_error_names_the_path() {
        let bogus = Path::new("/nonexistent-dir-dynex/j.jsonl");
        let err = Journal::open(bogus).unwrap_err();
        assert!(err.to_string().contains("nonexistent-dir-dynex"));
    }

    #[test]
    fn records_carry_a_validating_checksum() {
        let path = temp_path("sum");
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("k", r#"{"v":7}"#).unwrap();
        }
        let raw = std::fs::read_to_string(&path).unwrap();
        let line = raw.trim_end();
        let at = line.rfind(SUM_MARKER).expect("record carries a sum field");
        assert_eq!(
            &line[at + SUM_MARKER.len()..line.len() - 2],
            line_checksum(&line[..at]),
            "sum must hash the exact prefix bytes: {line}"
        );
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.checksum_mismatches(), 0);
        assert_eq!(j.unchecksummed(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_is_dropped_and_counted_not_warm_booted() {
        let path = temp_path("corrupt");
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("good", r#"{"v":1}"#).unwrap();
            j.record("victim", r#"{"misses":100}"#).unwrap();
        }
        // Flip one digit inside the victim's *value* — the line still
        // parses as JSON, so only the checksum can catch it.
        let raw = std::fs::read_to_string(&path).unwrap();
        let flipped = raw.replace(r#"{"misses":100}"#, r#"{"misses":900}"#);
        assert_ne!(raw, flipped, "corruption must actually land");
        std::fs::write(&path, flipped).unwrap();

        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.checksum_mismatches(), 1);
        assert_eq!(j.len(), 1, "the corrupt record must not load");
        assert!(j.lookup("victim").is_none());
        assert!(j.lookup("good").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_records_without_sum_are_accepted_and_counted() {
        let path = temp_path("legacy");
        std::fs::write(&path, "{\"key\":\"old\",\"value\":{\"v\":5}}\n").unwrap();
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.unchecksummed(), 1);
        assert_eq!(j.checksum_mismatches(), 0);
        assert_eq!(
            j.lookup("old").unwrap().get("v").and_then(Json::as_u64),
            Some(5)
        );
        // New appends onto a legacy journal are checksummed.
        j.record("new", r#"{"v":6}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.unchecksummed(), 1, "only the legacy record is unverified");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_policy_parses_and_fsync_round_trips() {
        assert_eq!(SyncPolicy::parse("flush").unwrap(), SyncPolicy::Flush);
        assert_eq!(SyncPolicy::parse("fsync").unwrap(), SyncPolicy::Fsync);
        let err = SyncPolicy::parse("paranoid").unwrap_err();
        assert!(err.contains("paranoid"), "{err}");
        assert_eq!(SyncPolicy::Flush.to_string(), "flush");
        assert_eq!(SyncPolicy::Fsync.to_string(), "fsync");

        let path = temp_path("fsync");
        {
            let mut j = Journal::open_with(&path, SyncPolicy::Fsync).unwrap();
            assert_eq!(j.sync_policy(), SyncPolicy::Fsync);
            j.record("k", r#"{"v":1}"#).unwrap();
            j.set_sync_policy(SyncPolicy::Flush);
            assert_eq!(j.sync_policy(), SyncPolicy::Flush);
        }
        let mut j = Journal::open(&path).unwrap();
        assert!(j.lookup("k").is_some());
        std::fs::remove_file(&path).ok();
    }
}
