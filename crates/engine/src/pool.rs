//! The deterministic worker pool: a channel-based work queue over scoped
//! `std::thread`s, with results reassembled in plan order.
//!
//! Determinism contract: [`execute`] returns exactly the vector a serial
//! `items.iter().map(f).collect()` would return, for every worker count.
//! Workers race only over *which* item they pull next; each result is tagged
//! with its plan index and reassembled in order, so scheduling never leaks
//! into the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Session-wide default worker count override; 0 means "auto".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the session-wide default worker count used by [`default_jobs`]
/// (`0` restores auto-detection). Drivers call this once after argument
/// parsing so deep call chains (figure sweeps) need no plumbing.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// Validates the `DYNEX_JOBS` environment variable: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer, and `Err(message)` for anything
/// else (including `0`).
///
/// [`default_jobs`] stays infallible and silently falls back on a bad value
/// (deep call sites cannot surface errors); drivers should call this once
/// at startup and abort on `Err` so a typo'd `DYNEX_JOBS=eight` fails loudly
/// instead of quietly running with auto-detected parallelism.
pub fn env_jobs() -> Result<Option<usize>, String> {
    match std::env::var("DYNEX_JOBS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err("DYNEX_JOBS is not valid unicode".to_owned()),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(0) => Err("DYNEX_JOBS must be a positive integer, got 0".to_owned()),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!(
                "DYNEX_JOBS must be a positive integer, got {raw:?}"
            )),
        },
    }
}

/// The worker count used when a caller does not specify one: the
/// [`set_default_jobs`] override if set, else the `DYNEX_JOBS` environment
/// variable if parseable and nonzero, else [`available_jobs`].
pub fn default_jobs() -> usize {
    let explicit = DEFAULT_JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(env) = std::env::var("DYNEX_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
    {
        return env;
    }
    available_jobs()
}

/// Runs `f` over every item on `jobs` worker threads and returns the results
/// **in item order**, bit-identical to a serial map regardless of `jobs`.
///
/// `jobs` is clamped to the item count; `jobs <= 1` runs serially on the
/// calling thread with no pool at all.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool shuts down and the first worker
/// panic is re-raised).
///
/// # Examples
///
/// ```
/// let squares = dynex_engine::execute(&[1u64, 2, 3, 4], 3, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn execute<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }

    // Work queue: every plan index is enqueued up front; workers drain it
    // through a shared receiver. mpsc receivers are not Sync, so the
    // receiving end is serialized behind a mutex — the critical section is
    // one `recv`, which is negligible next to a simulation job.
    let (index_tx, index_rx) = mpsc::channel::<usize>();
    for index in 0..items.len() {
        index_tx.send(index).expect("queue receiver alive");
    }
    drop(index_tx); // workers see Err(..) when the queue drains
    let queue = Mutex::new(index_rx);

    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let queue = &queue;
            let f = &f;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                // Take the lock only for the dequeue, never while running f.
                let index = match queue.lock().expect("queue lock").recv() {
                    Ok(index) => index,
                    Err(_) => break, // queue drained
                };
                let result = f(&items[index]);
                if result_tx.send((index, result)).is_err() {
                    break; // collector gone: shutting down
                }
            });
        }
        drop(result_tx); // collector stops when every worker is done

        // Reassemble in plan order while workers run.
        while let Ok((index, result)) = result_rx.recv() {
            results[index] = Some(result);
        }
        // Scope joins workers here; a worker panic propagates below.
    });

    results
        .into_iter()
        .map(|r| r.expect("worker completed every claimed job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_for_every_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            let parallel = execute(&items, jobs, |&x| x * 3 + 1);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_plans() {
        let empty: Vec<u32> = execute(&[], 4, |x: &u32| *x);
        assert!(empty.is_empty());
        assert_eq!(execute(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_job_durations_do_not_reorder() {
        // Early items sleep longest, so with >1 worker the *completion*
        // order is roughly reversed — the output order must not be.
        let items: Vec<u64> = (0..12).collect();
        let out = execute(&items, 4, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(12 - x));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            execute(&[1u32, 2, 3], 2, |&x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_jobs_override_and_reset() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
