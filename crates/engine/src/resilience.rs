//! Fault-isolated sweep execution.
//!
//! [`crate::execute`] is the fast path: a panicking job aborts the whole
//! sweep and a hanging job blocks it forever. [`execute_resilient`] is its
//! fallible sibling for production sweeps over thousands of points:
//!
//! * every job runs under `catch_unwind`, so a panic becomes a structured
//!   [`JobError`] in that job's slot instead of tearing down the pool;
//! * a configurable bounded retry budget re-queues panicked jobs before
//!   giving up on them;
//! * an optional per-job soft deadline marks overrunning jobs
//!   [`JobFailure::TimedOut`] — the sweep completes without them, and a
//!   replacement worker is spawned so pool capacity is not silently lost to
//!   a stuck thread.
//!
//! The determinism contract is inherited from the pool: successful slots
//! hold exactly the value a serial run would produce, in plan order, for
//! every worker count. Only *whether* a slot failed can depend on wall-clock
//! behaviour (deadlines), never the value of a successful slot.
//!
//! Because a hung job cannot be cancelled, workers are detached
//! `std::thread` spawns over `Arc`-shared state rather than scoped borrows —
//! which is why `execute_resilient` takes `Arc<Vec<T>>` and `'static`
//! bounds. A worker stuck in a hung job parks on a dead queue once the sweep
//! finishes and exits with the process.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a sweep slot failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked on its final allowed attempt; `payload` is the
    /// panic message (or a placeholder for non-string payloads).
    Panicked {
        /// The stringified panic payload.
        payload: String,
    },
    /// The job overran the soft deadline; any result it eventually produces
    /// is discarded.
    TimedOut {
        /// The deadline it overran.
        limit: Duration,
    },
}

impl JobFailure {
    /// Stable lowercase tag (`"panicked"` / `"timed-out"`), used by summary
    /// tables.
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::Panicked { .. } => "panicked",
            JobFailure::TimedOut { .. } => "timed-out",
        }
    }
}

/// A failed sweep slot: which plan point, what happened, how long it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the point in the plan (results stay in plan order, so this
    /// is also the slot index).
    pub plan_index: usize,
    /// Attempts started for this point (1 = no retries were needed/allowed).
    pub attempts: u32,
    /// Wall-clock time of the failing attempt (for timeouts: how long the
    /// job had been running when it was marked overdue).
    pub elapsed: Duration,
    /// What went wrong.
    pub failure: JobFailure,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            JobFailure::Panicked { payload } => write!(
                f,
                "job {} panicked after {} attempt(s) ({:.1?}): {payload}",
                self.plan_index, self.attempts, self.elapsed
            ),
            JobFailure::TimedOut { limit } => write!(
                f,
                "job {} exceeded the {:.1?} deadline (ran {:.1?})",
                self.plan_index, limit, self.elapsed
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Fault-tolerance knobs for [`execute_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Retries allowed per job after a panic (0 = fail on the first panic).
    /// Panics in a deterministic job recur, so this mainly guards jobs with
    /// environmental failure modes (I/O, allocation pressure).
    pub max_retries: u32,
    /// Soft per-job deadline. `None` waits forever — a hung job then blocks
    /// the sweep exactly like [`crate::execute`] would.
    pub deadline: Option<Duration>,
    /// How often the collector checks running jobs against the deadline.
    pub watchdog_tick: Duration,
}

impl Default for Resilience {
    fn default() -> Resilience {
        Resilience {
            max_retries: 0,
            deadline: None,
            watchdog_tick: Duration::from_millis(25),
        }
    }
}

impl Resilience {
    /// Default policy with a retry budget.
    pub fn with_retries(max_retries: u32) -> Resilience {
        Resilience {
            max_retries,
            ..Resilience::default()
        }
    }

    /// Sets the soft per-job deadline.
    pub fn deadline(mut self, limit: Duration) -> Resilience {
        self.deadline = Some(limit);
        self
    }
}

/// Aggregate counts of a resilient sweep, for summary lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Slots that produced a result.
    pub ok: usize,
    /// Slots that exhausted their attempts panicking.
    pub panicked: usize,
    /// Slots marked overdue by the watchdog.
    pub timed_out: usize,
    /// Total retry attempts performed across all slots.
    pub retries: u64,
}

/// The outcome of [`execute_resilient`]: per-slot results in plan order plus
/// retry accounting.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    results: Vec<Result<R, JobError>>,
    retries: u64,
}

impl<R> SweepOutcome<R> {
    /// Per-slot results, in plan order.
    pub fn results(&self) -> &[Result<R, JobError>] {
        &self.results
    }

    /// Consumes the outcome, returning the per-slot results in plan order.
    pub fn into_results(self) -> Vec<Result<R, JobError>> {
        self.results
    }

    /// The failed slots, in plan order.
    pub fn failures(&self) -> impl Iterator<Item = &JobError> {
        self.results.iter().filter_map(|r| r.as_err())
    }

    /// `true` if any slot failed.
    pub fn has_failures(&self) -> bool {
        self.results.iter().any(|r| r.is_err())
    }

    /// Ok/panicked/timed-out/retry totals.
    pub fn counts(&self) -> SweepCounts {
        let mut c = SweepCounts {
            retries: self.retries,
            ..SweepCounts::default()
        };
        for r in &self.results {
            match r {
                Ok(_) => c.ok += 1,
                Err(e) => match e.failure {
                    JobFailure::Panicked { .. } => c.panicked += 1,
                    JobFailure::TimedOut { .. } => c.timed_out += 1,
                },
            }
        }
        c
    }

    /// One-line summary: `ok 12 | retried 2 | panicked 1 | timed-out 1`.
    pub fn summary(&self) -> String {
        let c = self.counts();
        format!(
            "ok {} | retried {} | panicked {} | timed-out {}",
            c.ok, c.retries, c.panicked, c.timed_out
        )
    }

    /// A per-cell failure table (one line per failed slot, labelled by
    /// `label`), or `None` when every slot succeeded.
    pub fn failure_table<L: Fn(usize) -> String>(&self, label: L) -> Option<String> {
        if !self.has_failures() {
            return None;
        }
        let mut out = String::from("slot | cell | outcome | attempts | detail\n");
        for e in self.failures() {
            let detail = match &e.failure {
                JobFailure::Panicked { payload } => payload.clone(),
                JobFailure::TimedOut { limit } => {
                    format!("deadline {:.1?}, ran {:.1?}", limit, e.elapsed)
                }
            };
            out.push_str(&format!(
                "{} | {} | {} | {} | {}\n",
                e.plan_index,
                label(e.plan_index),
                e.failure.kind(),
                e.attempts,
                detail
            ));
        }
        Some(out)
    }
}

/// `Result::as_err` is unstable; a local helper keeps `failures()` tidy.
trait AsErr<E> {
    fn as_err(&self) -> Option<&E>;
}

impl<R, E> AsErr<E> for Result<R, E> {
    fn as_err(&self) -> Option<&E> {
        self.as_ref().err()
    }
}

/// A claimed work item: plan index plus attempt number (1-based).
type Task = (usize, u32);

/// What a worker reports back for one attempt.
struct Done<R> {
    index: usize,
    attempt: u32,
    outcome: Result<R, String>,
    elapsed: Duration,
}

/// State shared between the collector and every (possibly replacement)
/// worker.
struct Shared<T, F> {
    items: Arc<Vec<T>>,
    f: F,
    /// The work queue; the receiving end is serialized behind a mutex as in
    /// [`crate::execute`].
    queue: Mutex<mpsc::Receiver<Task>>,
    /// Per-slot `(started-at, attempt)` of the currently running attempt,
    /// for the watchdog. `None` while no worker is executing that slot.
    starts: Vec<Mutex<Option<(Instant, u32)>>>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn spawn_worker<T, R, F>(shared: Arc<Shared<T, F>>, result_tx: Sender<Done<R>>)
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    std::thread::spawn(move || loop {
        // Take the lock only for the dequeue, never while running f.
        let (index, attempt) = match shared.queue.lock().expect("queue lock").recv() {
            Ok(task) => task,
            Err(_) => break, // queue closed: sweep finished
        };
        let begun = Instant::now();
        *shared.starts[index].lock().expect("start slot") = Some((begun, attempt));
        // AssertUnwindSafe: jobs are pure functions of their point (the
        // pool's determinism contract already requires this), so observing
        // `f` and `items` again after a contained panic is sound.
        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.f)(&shared.items[index])));
        let elapsed = begun.elapsed();
        *shared.starts[index].lock().expect("start slot") = None;
        // One latency sample per attempt (retries count separately): the
        // p99 of `engine.attempt` is the job-level tail a sweep operator
        // tunes the watchdog deadline against.
        dynex_obs::span::record_stage("engine.attempt", elapsed);
        let done = Done {
            index,
            attempt,
            outcome: outcome.map_err(|p| panic_message(p.as_ref())),
            elapsed,
        };
        if result_tx.send(done).is_err() {
            break; // collector gone: shutting down
        }
    });
}

/// Runs `f` over every item on `jobs` detached worker threads with panic
/// containment, bounded retries, and an optional soft deadline; returns
/// per-slot `Result`s **in plan order**.
///
/// Successful slots are bit-identical to a serial `items.iter().map(f)` for
/// every `jobs` value. A panicking job fails only its own slot
/// ([`JobFailure::Panicked`], after `resilience.max_retries` re-queues); a
/// job overrunning `resilience.deadline` is marked
/// [`JobFailure::TimedOut`], a replacement worker restores pool capacity,
/// and the sweep completes without it.
///
/// With `deadline: None` a hung job blocks forever, exactly like
/// [`crate::execute`] — supply a deadline to guarantee termination.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynex_engine::{execute_resilient, JobFailure, Resilience};
///
/// let items = Arc::new(vec![1u64, 2, 3, 4]);
/// let outcome = execute_resilient(items, 2, Resilience::default(), |&x| {
///     if x == 3 {
///         panic!("boom");
///     }
///     x * x
/// });
/// let results = outcome.results();
/// assert_eq!(results[0], Ok(1));
/// assert_eq!(results[1], Ok(4));
/// assert!(matches!(
///     results[2].as_ref().unwrap_err().failure,
///     JobFailure::Panicked { .. }
/// ));
/// assert_eq!(results[3], Ok(16));
/// ```
pub fn execute_resilient<T, R, F>(
    items: Arc<Vec<T>>,
    jobs: usize,
    resilience: Resilience,
    f: F,
) -> SweepOutcome<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return SweepOutcome {
            results: Vec::new(),
            retries: 0,
        };
    }
    let jobs = jobs.clamp(1, n);

    let (task_tx, task_rx) = mpsc::channel::<Task>();
    for index in 0..n {
        task_tx.send((index, 1)).expect("queue receiver alive");
    }
    let shared = Arc::new(Shared {
        items,
        f,
        queue: Mutex::new(task_rx),
        starts: (0..n).map(|_| Mutex::new(None)).collect(),
    });
    let (result_tx, result_rx) = mpsc::channel::<Done<R>>();
    for _ in 0..jobs {
        spawn_worker(Arc::clone(&shared), result_tx.clone());
    }

    let mut results: Vec<Option<Result<R, JobError>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut resolved = 0usize;
    let mut retries = 0u64;
    let tick = resilience.watchdog_tick.max(Duration::from_millis(1));

    while resolved < n {
        match result_rx.recv_timeout(tick) {
            Ok(done) => {
                if results[done.index].is_some() {
                    continue; // late result for a slot the watchdog gave up on
                }
                match done.outcome {
                    Ok(value) => {
                        results[done.index] = Some(Ok(value));
                        resolved += 1;
                    }
                    Err(payload) => {
                        if done.attempt <= resilience.max_retries {
                            retries += 1;
                            dynex_obs::span::record_stage("engine.retry", done.elapsed);
                            task_tx
                                .send((done.index, done.attempt + 1))
                                .expect("queue receiver alive");
                        } else {
                            results[done.index] = Some(Err(JobError {
                                plan_index: done.index,
                                attempts: done.attempt,
                                elapsed: done.elapsed,
                                failure: JobFailure::Panicked { payload },
                            }));
                            resolved += 1;
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let Some(limit) = resilience.deadline else {
                    continue;
                };
                // Watchdog sweep: mark overdue slots TimedOut and replace
                // their (presumed stuck) workers.
                for (index, slot) in results.iter_mut().enumerate() {
                    if slot.is_some() {
                        continue;
                    }
                    let running = *shared.starts[index].lock().expect("start slot");
                    let Some((begun, attempt)) = running else {
                        continue;
                    };
                    let elapsed = begun.elapsed();
                    if elapsed > limit {
                        dynex_obs::span::record_stage("engine.watchdog-timeout", elapsed);
                        *slot = Some(Err(JobError {
                            plan_index: index,
                            attempts: attempt,
                            elapsed,
                            failure: JobFailure::TimedOut { limit },
                        }));
                        resolved += 1;
                        spawn_worker(Arc::clone(&shared), result_tx.clone());
                    }
                }
            }
            // The collector holds a result sender, so workers can never all
            // disconnect first.
            Err(RecvTimeoutError::Disconnected) => unreachable!("collector holds a sender"),
        }
    }
    // Closing the queue wakes idle workers so they exit; workers stuck in
    // hung jobs stay parked on their job until the process ends.
    drop(task_tx);

    SweepOutcome {
        results: results
            .into_iter()
            .map(|slot| slot.expect("all slots resolved"))
            .collect(),
        retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn clean_sweep_matches_serial_for_every_worker_count() {
        let items: Vec<u64> = (0..31).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 7 + 1).collect();
        for jobs in [1, 2, 4, 16] {
            let outcome =
                execute_resilient(Arc::new(items.clone()), jobs, Resilience::default(), |&x| {
                    x * 7 + 1
                });
            assert!(!outcome.has_failures());
            let values: Vec<u64> = outcome
                .into_results()
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(values, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_plan() {
        let outcome = execute_resilient(
            Arc::new(Vec::<u64>::new()),
            4,
            Resilience::default(),
            |&x| x,
        );
        assert!(outcome.results().is_empty());
        assert_eq!(outcome.counts(), SweepCounts::default());
    }

    #[test]
    fn panic_is_contained_to_its_slot() {
        let items: Vec<u64> = (0..8).collect();
        let outcome = execute_resilient(Arc::new(items), 3, Resilience::default(), |&x| {
            if x == 5 {
                panic!("job five exploded");
            }
            x + 100
        });
        let counts = outcome.counts();
        assert_eq!(counts.ok, 7);
        assert_eq!(counts.panicked, 1);
        assert_eq!(counts.timed_out, 0);
        let err = outcome.results()[5].as_ref().unwrap_err();
        assert_eq!(err.plan_index, 5);
        assert_eq!(err.attempts, 1);
        assert!(matches!(
            &err.failure,
            JobFailure::Panicked { payload } if payload.contains("exploded")
        ));
        assert!(outcome.summary().contains("panicked 1"));
        let table = outcome.failure_table(|i| format!("cell{i}")).unwrap();
        assert!(table.contains("cell5"));
        assert!(table.contains("panicked"));
    }

    #[test]
    fn retry_budget_rescues_transient_panics() {
        static FLAKY_CALLS: AtomicU32 = AtomicU32::new(0);
        let items: Vec<u64> = (0..4).collect();
        let outcome = execute_resilient(Arc::new(items), 2, Resilience::with_retries(2), |&x| {
            if x == 2 && FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            x
        });
        assert!(!outcome.has_failures());
        assert_eq!(outcome.counts().retries, 2);
        assert_eq!(outcome.results()[2], Ok(2));
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let outcome = execute_resilient(
            Arc::new(vec![0u8]),
            1,
            Resilience::with_retries(2),
            |_| -> u8 { panic!("always") },
        );
        let err = outcome.results()[0].as_ref().unwrap_err();
        assert_eq!(err.attempts, 3); // 1 initial + 2 retries
        assert_eq!(outcome.counts().retries, 2);
    }

    #[test]
    fn hung_job_times_out_and_sweep_completes() {
        let items: Vec<u64> = (0..6).collect();
        let outcome = execute_resilient(
            Arc::new(items),
            2,
            Resilience::default().deadline(Duration::from_millis(100)),
            |&x| {
                if x == 1 {
                    std::thread::sleep(Duration::from_secs(30));
                }
                x * 2
            },
        );
        let counts = outcome.counts();
        assert_eq!(counts.timed_out, 1);
        assert_eq!(counts.ok, 5);
        let err = outcome.results()[1].as_ref().unwrap_err();
        assert!(matches!(err.failure, JobFailure::TimedOut { .. }));
        // Every other slot is intact and correctly valued.
        for (i, r) in outcome.results().iter().enumerate() {
            if i != 1 {
                assert_eq!(*r, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn panicking_and_hanging_jobs_in_one_sweep_at_any_worker_count() {
        // The acceptance scenario: one panicking and one hanging job;
        // everything else must come back bit-identical to a clean run, at
        // every worker count (including a single worker, where the
        // replacement spawn is what keeps the sweep moving).
        let items: Vec<u64> = (0..10).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x + 7).collect();
        for jobs in [1, 2, 4, 8] {
            let outcome = execute_resilient(
                Arc::new(items.clone()),
                jobs,
                Resilience::default().deadline(Duration::from_millis(150)),
                |&x| {
                    match x {
                        3 => panic!("deliberate panic"),
                        7 => std::thread::sleep(Duration::from_secs(30)),
                        _ => {}
                    }
                    x + 7
                },
            );
            let counts = outcome.counts();
            assert_eq!(counts.panicked, 1, "jobs={jobs}");
            assert_eq!(counts.timed_out, 1, "jobs={jobs}");
            assert_eq!(counts.ok, 8, "jobs={jobs}");
            for (i, r) in outcome.results().iter().enumerate() {
                match i {
                    3 => assert!(
                        matches!(r.as_ref().unwrap_err().failure, JobFailure::Panicked { .. }),
                        "jobs={jobs}"
                    ),
                    7 => assert!(
                        matches!(r.as_ref().unwrap_err().failure, JobFailure::TimedOut { .. }),
                        "jobs={jobs}"
                    ),
                    _ => assert_eq!(*r, Ok(expected[i]), "jobs={jobs} slot={i}"),
                }
            }
        }
    }

    #[test]
    fn job_error_display_names_the_slot() {
        let e = JobError {
            plan_index: 4,
            attempts: 2,
            elapsed: Duration::from_millis(10),
            failure: JobFailure::Panicked {
                payload: "kaput".to_owned(),
            },
        };
        let text = e.to_string();
        assert!(text.contains("job 4"));
        assert!(text.contains("kaput"));
        let t = JobError {
            plan_index: 1,
            attempts: 1,
            elapsed: Duration::from_millis(300),
            failure: JobFailure::TimedOut {
                limit: Duration::from_millis(200),
            },
        };
        assert!(t.to_string().contains("deadline"));
    }
}
