//! Set-partitioned single-trace parallelism.
//!
//! In a direct-mapped cache — conventional, dynamic-exclusion, or optimal —
//! all per-set state is independent across sets: the resident tag, the
//! sticky bit (one per line, and lines are sets), and the hit-last bits of
//! the blocks mapping to that set (a block maps to exactly one set, and the
//! perfect hit-last store is keyed by line address). A reference only ever
//! reads or writes the state of the set its address maps to, and the
//! aggregate statistics are order-independent sums over references. So a
//! long trace can be split by `set_index(addr) % n_shards`, each shard
//! simulated concurrently against its own cache instance, and the per-shard
//! [`CacheStats`] merged exactly — bit-identical to the serial run.
//!
//! This does **not** hold for the last-line-buffer variants
//! ([`PolicyKind::DeLastLine`], [`PolicyKind::OptimalDmLastLine`]): the buffer holds
//! the single most recently referenced line *globally*, so deleting other
//! sets' references from a shard changes which references the buffer
//! absorbs. [`PolicyKind::supports_set_sharding`] encodes exactly this.

use dynex_cache::{CacheConfig, CacheStats, Geometry};

use crate::pool::execute;
use crate::sweep::PolicyKind;

/// Splits a byte-address trace into `n_shards` subsequences by set index
/// (`set % n_shards`), preserving the relative order of references within
/// each shard.
///
/// The shards partition the trace: every reference appears in exactly one
/// shard, and references to the same *set* always share a shard.
///
/// # Panics
///
/// Panics if `n_shards == 0`.
pub fn shard_by_set(geometry: Geometry, addrs: &[u32], n_shards: usize) -> Vec<Vec<u32>> {
    assert!(n_shards > 0, "need at least one shard");
    let mut shards: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    // Pre-size: shards are near-uniform for realistic traces.
    let hint = addrs.len() / n_shards + 1;
    for shard in &mut shards {
        shard.reserve(hint);
    }
    for &addr in addrs {
        let set = geometry.set_of_addr(addr) as usize;
        shards[set % n_shards].push(addr);
    }
    shards
}

/// Simulates `addrs` as `n_shards` set-partitioned shards on `jobs` workers
/// and returns the merged statistics.
///
/// `sim` must be a simulation whose per-set state is independent across sets
/// (see the module docs); under that contract the result is bit-identical to
/// `sim(addrs)`. Each worker invocation receives one shard.
pub fn simulate_sharded<F>(
    geometry: Geometry,
    addrs: &[u32],
    n_shards: usize,
    jobs: usize,
    sim: F,
) -> CacheStats
where
    F: Fn(&[u32]) -> CacheStats + Sync,
{
    let shards = shard_by_set(geometry, addrs, n_shards);
    let per_shard = execute(&shards, jobs, |shard| sim(shard));
    let mut merged = CacheStats::new();
    for stats in &per_shard {
        merged.merge(stats);
    }
    merged
}

/// Simulates one `policy` over `addrs` with set-partitioned parallelism:
/// `n_shards` shards on `jobs` workers, statistics merged exactly.
///
/// In debug builds the merged result is asserted equal to the serial run —
/// the executable form of the module's exactness argument.
///
/// # Panics
///
/// Panics if `policy` does not support set sharding
/// ([`PolicyKind::supports_set_sharding`]).
pub fn sharded_policy_stats(
    config: CacheConfig,
    policy: PolicyKind,
    addrs: &[u32],
    n_shards: usize,
    jobs: usize,
) -> CacheStats {
    assert!(
        policy.supports_set_sharding(),
        "policy {} has cross-set state and cannot be set-sharded",
        policy.name()
    );
    let merged = simulate_sharded(config.geometry(), addrs, n_shards, jobs, |shard| {
        policy
            .simulate(config, shard)
            .expect("shardable policies run on every kernel")
    });
    debug_assert_eq!(
        merged,
        policy
            .simulate(config, addrs)
            .expect("shardable policies run on every kernel"),
        "set-sharded statistics diverged from the serial run ({} shards, {})",
        n_shards,
        policy.name()
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_cache::SplitMix64;

    fn config() -> CacheConfig {
        CacheConfig::direct_mapped(256, 4).unwrap()
    }

    fn random_trace(seed: u64, len: usize, span: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(seed);
        (0..len).map(|_| (rng.below(span) as u32) * 4).collect()
    }

    #[test]
    fn shards_partition_and_preserve_order() {
        let cfg = config();
        let addrs = random_trace(1, 500, 256);
        let shards = shard_by_set(cfg.geometry(), &addrs, 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), addrs.len());
        // Within each shard, references appear in trace order.
        for (s, shard) in shards.iter().enumerate() {
            let expected: Vec<u32> = addrs
                .iter()
                .copied()
                .filter(|&a| cfg.geometry().set_of_addr(a) as usize % 4 == s)
                .collect();
            assert_eq!(shard, &expected, "shard {s}");
        }
    }

    #[test]
    fn same_set_references_share_a_shard() {
        let cfg = config(); // 64 sets
        let g = cfg.geometry();
        let addrs: Vec<u32> = vec![0, 256, 512, 4, 260];
        for n in [1, 2, 3, 7] {
            let shards = shard_by_set(g, &addrs, n);
            // 0, 256 and 512 all map to set 0 => one shard holds all three.
            let home = shards
                .iter()
                .find(|s| s.contains(&0))
                .expect("set 0 shard exists");
            assert!(home.contains(&256) && home.contains(&512), "n={n}");
        }
    }

    #[test]
    fn sharded_equals_serial_for_every_exact_policy() {
        let cfg = config();
        let addrs = random_trace(7, 4_000, 512);
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            let serial = policy.simulate(cfg, &addrs).unwrap();
            for shards in [1, 2, 4, 8, 64] {
                for jobs in [1, 2, 4] {
                    let sharded = sharded_policy_stats(cfg, policy, &addrs, shards, jobs);
                    assert_eq!(
                        sharded,
                        serial,
                        "{} with {shards} shards, {jobs} jobs",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_sets_is_harmless() {
        let cfg = CacheConfig::direct_mapped(16, 4).unwrap(); // 4 sets
        let addrs = random_trace(3, 300, 64);
        let serial = PolicyKind::DirectMapped.simulate(cfg, &addrs).unwrap();
        let sharded = sharded_policy_stats(cfg, PolicyKind::DirectMapped, &addrs, 16, 4);
        assert_eq!(sharded, serial);
    }

    #[test]
    #[should_panic(expected = "cannot be set-sharded")]
    fn lastline_policy_rejected() {
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        sharded_policy_stats(cfg, PolicyKind::DeLastLine, &[0, 4, 8], 2, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        shard_by_set(config().geometry(), &[0], 0);
    }
}
