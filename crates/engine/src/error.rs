//! The engine's unified error taxonomy.
//!
//! Everything fallible in the sweep layer converges on [`EngineError`] so
//! drivers can hold one error type: job failures from the resilient pool
//! ([`crate::JobError`]), journal I/O ([`crate::JournalError`]), and
//! invalid driver configuration. Hand-rolled `Display`/`Error`/`From`
//! impls keep the workspace dependency-free (no `thiserror`).

use std::fmt;

use crate::journal::JournalError;
use crate::resilience::JobError;

/// Any failure the sweep engine can surface to a driver.
#[derive(Debug)]
pub enum EngineError {
    /// A sweep job failed (panicked or timed out) and was not recovered.
    Job(JobError),
    /// The checkpoint journal could not be opened, read, or appended to.
    Journal(JournalError),
    /// Invalid driver configuration (malformed CLI argument or environment
    /// variable).
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Job(e) => write!(f, "sweep job failed: {e}"),
            EngineError::Journal(e) => write!(f, "sweep journal failed: {e}"),
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Job(e) => Some(e),
            EngineError::Journal(e) => Some(e),
            EngineError::Config(_) => None,
        }
    }
}

impl From<JobError> for EngineError {
    fn from(e: JobError) -> EngineError {
        EngineError::Job(e)
    }
}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> EngineError {
        EngineError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::JobFailure;
    use std::error::Error as _;
    use std::time::Duration;

    #[test]
    fn display_and_source_chain() {
        let job: EngineError = JobError {
            plan_index: 2,
            attempts: 1,
            elapsed: Duration::from_millis(5),
            failure: JobFailure::Panicked {
                payload: "boom".to_owned(),
            },
        }
        .into();
        assert!(job.to_string().contains("sweep job failed"));
        assert!(job.source().unwrap().to_string().contains("boom"));

        let cfg = EngineError::Config("--refs must be positive".to_owned());
        assert!(cfg.to_string().contains("--refs"));
        assert!(cfg.source().is_none());
    }
}
