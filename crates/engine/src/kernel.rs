//! Session-wide kernel selection, mirroring the worker-count default in
//! [`crate::pool`].
//!
//! The `--kernel {reference,batch,sweep}` flag is parsed once by the
//! drivers and stored here; deep call chains ([`crate::PolicyKind::simulate`],
//! the figure sweeps, the sharded paths) pick it up without plumbing a
//! parameter through every signature. All kernels are bit-identical in
//! output, so this setting is purely a performance choice — journal keys
//! and resumed sweeps are unaffected by it.

use std::sync::atomic::{AtomicU8, Ordering};

use dynex_cache::Kernel;

/// Session-wide kernel override. Encoding: 0 = batch (the default),
/// 1 = reference, 2 = sweep.
static DEFAULT_KERNEL: AtomicU8 = AtomicU8::new(0);

/// Sets the session-wide kernel used by [`default_kernel`]. Drivers call
/// this once after argument parsing.
pub fn set_default_kernel(kernel: Kernel) {
    let encoded = match kernel {
        Kernel::Batch => 0u8,
        Kernel::Reference => 1,
        Kernel::Sweep => 2,
    };
    DEFAULT_KERNEL.store(encoded, Ordering::Relaxed);
}

/// The kernel used when a caller does not specify one: the
/// [`set_default_kernel`] override if set, else [`Kernel::Batch`].
///
/// # Examples
///
/// ```
/// use dynex_engine::{default_kernel, set_default_kernel, Kernel};
///
/// assert_eq!(default_kernel(), Kernel::Batch);
/// set_default_kernel(Kernel::Sweep);
/// assert_eq!(default_kernel(), Kernel::Sweep);
/// set_default_kernel(Kernel::Batch);
/// ```
pub fn default_kernel() -> Kernel {
    match DEFAULT_KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Reference,
        2 => Kernel::Sweep,
        _ => Kernel::Batch,
    }
}
