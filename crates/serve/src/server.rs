//! The sweep service: accepts [`SimulationRequest`] JSON over HTTP, batches
//! distinct requests onto the engine's resilient worker pool, coalesces
//! concurrent duplicates into one simulation, and serves repeats from an
//! LRU result cache keyed by the journal content key.
//!
//! # Concurrency architecture
//!
//! One acceptor thread spawns a short-lived handler thread per connection.
//! Handlers never simulate: they resolve the request to its content key,
//! then either answer from the result cache, join an in-flight computation
//! (single-flight), or enqueue a job on a *bounded* queue and wait. A single
//! dispatcher thread drains the queue, groups what has arrived inside the
//! batch window into one plan, and executes the plan with
//! [`dynex_engine::execute_resilient`] — so the worker count, watchdog
//! deadline, and panic containment are exactly the PR 3 sweep machinery.
//! A full queue is reported to the client as `429 Too Many Requests`
//! immediately (backpressure is explicit, never an unbounded buffer).
//!
//! Determinism carries through from the engine: for a given request body
//! the response JSON is byte-identical for every `jobs` setting, every
//! batch composition, and whether the result came from the simulator, the
//! cache, or a journal warm start.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dynex_engine::{
    default_jobs, execute_resilient, trace_digest, JobFailure, Journal, Kernel, Resilience,
    SyncPolicy,
};
use dynex_experiments::api::{self, LoadedTrace, SimulationRequest, SimulationResponse};
use dynex_obs::json;
use dynex_obs::span::{self, SpanCtx};
use dynex_obs::MetricsRegistry;

use crate::http::{read_request, write_response, write_response_traced, HttpRequest};
use crate::lru::LruCache;

/// Locks `mutex`, recovering the guard when a previous holder panicked.
///
/// Every structure behind the service's shared locks survives a panicking
/// holder intact — counters, the LRU map, the flight map, and the journal
/// handle are each updated with operations that either complete or leave
/// the value untouched — so recovering from poison is strictly better than
/// letting one panicked connection handler wedge `/metrics`, the result
/// cache, and graceful drain for the whole process.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Largest number of queued requests folded into one engine plan.
const MAX_BATCH: usize = 64;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default loopback).
    pub host: String,
    /// TCP port to bind; 0 picks an ephemeral port (see [`Server::addr`]).
    pub port: u16,
    /// Worker threads for the simulation pool; 0 means
    /// [`dynex_engine::default_jobs`]. Responses are bit-identical for
    /// every value.
    pub jobs: usize,
    /// Bounded depth of the simulation queue; a full queue rejects with
    /// `429`. Clamped to at least 1.
    pub queue_capacity: usize,
    /// LRU result-cache capacity in entries; 0 disables result caching.
    pub cache_capacity: usize,
    /// How long the dispatcher waits for more requests to share a plan
    /// with. Zero batches only what is already queued.
    pub batch_window: Duration,
    /// Deadline applied to requests that carry no `deadline_ms` of their
    /// own; `None` waits forever.
    pub default_deadline: Option<Duration>,
    /// A `simcache --resume` / `experiments --resume` journal to warm the
    /// result cache from at boot; fresh results are appended to it.
    pub warm_journal: Option<PathBuf>,
    /// How far each journal append is pushed toward stable storage before
    /// the response is sent: [`SyncPolicy::Flush`] (the default) survives
    /// a process kill, [`SyncPolicy::Fsync`] also survives power loss.
    pub journal_sync: SyncPolicy,
    /// Test hook: artificial delay inside every simulation job. Keeps
    /// backpressure and coalescing tests deterministic without relying on
    /// workload size. Zero (the default) for production.
    pub inject_sim_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            jobs: 0,
            queue_capacity: 64,
            cache_capacity: 1024,
            batch_window: Duration::from_millis(2),
            default_deadline: None,
            warm_journal: None,
            journal_sync: SyncPolicy::Flush,
            inject_sim_delay: Duration::ZERO,
        }
    }
}

/// Startup failures.
#[derive(Debug)]
pub enum ServeError {
    /// The listen socket could not be bound.
    Bind(std::io::Error),
    /// The warm-start journal could not be opened.
    Journal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "cannot bind listen socket: {e}"),
            ServeError::Journal(e) => write!(f, "cannot open warm-start journal: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How one simulation attempt ended, as seen by the clients awaiting it.
#[derive(Debug, Clone)]
enum FlightError {
    /// The engine watchdog marked the job overdue (`504`).
    TimedOut(String),
    /// The job panicked or failed internally (`500`).
    Failed(String),
    /// The leader could not enqueue the job (queue full or draining);
    /// the status (`429`/`503`) is relayed to every joiner.
    Rejected(u16, String),
}

type FlightResult = Result<SimulationResponse, FlightError>;

/// One in-flight computation that any number of handler threads can await.
struct Flight {
    slot: Mutex<Option<FlightResult>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the result and wakes every waiter.
    fn fill(&self, result: FlightResult) {
        *self.slot.lock().expect("flight lock") = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until the flight completes or `deadline` passes.
    fn wait(&self, deadline: Option<Duration>) -> Result<FlightResult, Duration> {
        let start = Instant::now();
        let mut slot = self.slot.lock().expect("flight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return Ok(result.clone());
            }
            match deadline {
                None => slot = self.ready.wait(slot).expect("flight lock"),
                Some(limit) => {
                    let Some(remaining) = limit.checked_sub(start.elapsed()) else {
                        return Err(limit);
                    };
                    slot = self
                        .ready
                        .wait_timeout(slot, remaining)
                        .expect("flight lock")
                        .0;
                }
            }
        }
    }
}

/// One queued unit of work for the dispatcher.
struct SimJob {
    key: String,
    request: SimulationRequest,
    trace: LoadedTrace,
    flight: Arc<Flight>,
    deadline: Option<Duration>,
    /// The leader's request span, so the simulate span executed on a pool
    /// worker thread still parents into the originating trace. `None` below
    /// [`dynex_obs::TraceLevel::Full`].
    ctx: Option<SpanCtx>,
}

/// State shared between the acceptor, handlers, and the dispatcher.
struct State {
    cache: Mutex<LruCache<SimulationResponse>>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    queue: Mutex<Option<SyncSender<SimJob>>>,
    metrics: Mutex<MetricsRegistry>,
    journal: Mutex<Option<Journal>>,
    draining: AtomicBool,
    /// Live handler-thread count; `join` waits for it to reach zero.
    handlers: (Mutex<usize>, Condvar),
    default_deadline: Option<Duration>,
    /// The bound listen address, for the drain self-poke.
    listen_addr: SocketAddr,
}

impl State {
    fn count(&self, name: &str) {
        lock_or_recover(&self.metrics).add(name, 1);
    }
}

/// One `{"error":…}` body, stamped with the request's trace id so a client
/// can correlate a failure against a `--trace-out` span stream.
fn error_body(message: &str, trace_id: u64) -> String {
    format!(
        r#"{{"error":"{}","trace_id":"{}"}}"#,
        json::escape(message),
        span::trace_hex(trace_id)
    )
}

/// Decrements the live-handler count when a handler thread exits (however
/// it exits — panics included, so a poisoned handler can never wedge
/// [`Server::join`]).
struct HandlerGuard(Arc<State>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        let (count, woken) = &self.0.handlers;
        let mut count = lock_or_recover(count);
        *count -= 1;
        if *count == 0 {
            woken.notify_all();
        }
    }
}

/// A running sweep service.
///
/// Dropping the handle does *not* stop the service; call
/// [`Server::shutdown`] then [`Server::join`] (or hit `POST /shutdown`).
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Server {
    /// Binds the socket, warms the cache, and spawns the service threads.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        // Per-stage latency histograms are part of the service's metrics
        // contract, so the tracing layer runs at least at Latency level for
        // the life of the process. A pre-installed JSONL sink (the binary's
        // `--trace-out`) keeps the level at Full.
        span::enable_latency();
        let listener =
            TcpListener::bind((config.host.as_str(), config.port)).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        let jobs = if config.jobs == 0 {
            default_jobs()
        } else {
            config.jobs
        };

        let mut cache = LruCache::new(config.cache_capacity);
        let mut metrics = MetricsRegistry::new();
        for name in [
            "requests-total",
            "sims-started",
            "sims-executed",
            "cache-hits",
            "coalesced-hits",
            "fused-jobs",
            "queued",
            "rejected-429",
            "sim-failures",
            "sim-timeouts",
            "warm-start-entries",
        ] {
            metrics.add(name, 0);
        }
        let journal = match &config.warm_journal {
            Some(path) => {
                let journal = Journal::open_with(path, config.journal_sync)
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
                // Deterministic warm-start order: journal iteration order is
                // unspecified, and with more entries than cache capacity the
                // insertion order decides who survives.
                let mut warm: Vec<(String, SimulationResponse)> = journal
                    .entries()
                    .filter_map(|(key, value)| {
                        let (label, stats, de) = api::result_from_journal(value)?;
                        let response = SimulationResponse {
                            label,
                            stats,
                            de,
                            key: key.to_owned(),
                            cached: true,
                        };
                        Some((key.to_owned(), response))
                    })
                    .collect();
                warm.sort_by(|a, b| a.0.cmp(&b.0));
                for (key, response) in &warm {
                    cache.insert(key, response.clone());
                }
                metrics.add("warm-start-entries", warm.len() as u64);
                Some(journal)
            }
            None => None,
        };

        let (sender, receiver) = std::sync::mpsc::sync_channel(config.queue_capacity.max(1));
        let state = Arc::new(State {
            cache: Mutex::new(cache),
            flights: Mutex::new(HashMap::new()),
            queue: Mutex::new(Some(sender)),
            metrics: Mutex::new(metrics),
            journal: Mutex::new(journal),
            draining: AtomicBool::new(false),
            handlers: (Mutex::new(0), Condvar::new()),
            default_deadline: config.default_deadline,
            listen_addr: addr,
        });

        let dispatcher = {
            let state = Arc::clone(&state);
            let batch_window = config.batch_window;
            let sim_delay = config.inject_sim_delay;
            std::thread::spawn(move || dispatcher(state, receiver, jobs, batch_window, sim_delay))
        };
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || acceptor(state, listener))
        };

        Ok(Server {
            state,
            addr,
            acceptor,
            dispatcher,
        })
    }

    /// The bound address (the real port when `port: 0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reads one metrics counter (e.g. `"sims-executed"`).
    pub fn counter(&self, name: &str) -> u64 {
        lock_or_recover(&self.state.metrics).counter(name)
    }

    /// Starts a graceful drain: stop accepting, finish queued and in-flight
    /// work. Equivalent to `POST /shutdown`. Idempotent.
    pub fn shutdown(&self) {
        initiate_drain(&self.state, self.addr);
    }

    /// Blocks until the service has drained (a shutdown must have been
    /// requested via [`Server::shutdown`] or `POST /shutdown`), then joins
    /// every service thread and closes the journal.
    pub fn join(self) {
        // The acceptor exits once draining is set and its blocking accept
        // is poked; until then this parks exactly like a foreground server
        // process should.
        self.acceptor.join().expect("acceptor thread");
        // Wait for in-flight handler threads (they may still be enqueueing
        // or awaiting flights).
        let (count, woken) = &self.state.handlers;
        let mut count = lock_or_recover(count);
        while *count > 0 {
            count = woken.wait(count).unwrap_or_else(PoisonError::into_inner);
        }
        drop(count);
        // Hang up the queue: the dispatcher drains what is left and exits.
        lock_or_recover(&self.state.queue).take();
        self.dispatcher.join().expect("dispatcher thread");
        // Close (flush) the journal.
        lock_or_recover(&self.state.journal).take();
    }
}

/// Flips the draining flag and unblocks the acceptor's blocking `accept`
/// with a throwaway self-connection.
fn initiate_drain(state: &State, addr: SocketAddr) {
    state.draining.store(true, Ordering::SeqCst);
    // Poke: the connect either reaches the acceptor (which sees the flag
    // and exits) or fails because the listener is already gone. Both fine.
    let _ = TcpStream::connect(addr);
}

/// Accept loop: one short-lived handler thread per connection.
fn acceptor(state: Arc<State>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.draining.load(Ordering::SeqCst) {
            // The drain poke (or a late client): answer with an explicit
            // 503 rather than a connection reset (harmless on the poke's
            // throwaway connection), then flush whatever the listen
            // backlog still holds the same way before the listener drops.
            refuse(stream);
            let _ = listener.set_nonblocking(true);
            while let Ok((stream, _)) = listener.accept() {
                refuse(stream);
            }
            return;
        }
        let accepted = Instant::now();
        let (count, _) = &state.handlers;
        *lock_or_recover(count) += 1;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let _guard = HandlerGuard(Arc::clone(&state));
            handle_connection(&state, stream, accepted);
        });
    }
}

/// Answers a connection caught by the drain with an explicit `503`.
fn refuse(mut stream: TcpStream) {
    let _ = write_response(&mut stream, 503, r#"{"error":"service is draining"}"#);
}

/// Serves one connection: parse, route, respond, close.
///
/// `accepted` is when the acceptor pulled the connection off the listen
/// socket; the gap to here (thread spawn + scheduling) is the `accept`
/// stage. Every routed response carries the request's trace id in an
/// `X-Dynex-Trace` header; error bodies repeat it as a `"trace_id"` field.
/// Success bodies do *not* — they stay byte-identical to the engine's
/// deterministic output regardless of tracing.
fn handle_connection(state: &Arc<State>, mut stream: TcpStream, accepted: Instant) {
    let trace_id = span::fresh_trace_id();
    let _request = span::root_span("request", trace_id);
    span::record_stage("accept", accepted.elapsed());
    // A stalled client must not wedge graceful drain forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(message) => {
            let _ =
                write_response_traced(&mut stream, 400, &error_body(&message, trace_id), trace_id);
            return;
        }
    };
    state.count("requests-total");
    let (status, body) = route(state, &request, trace_id);
    let _respond = span::span("respond");
    let _ = write_response_traced(&mut stream, status, &body, trace_id);
}

/// Maps a parsed request to `(status, JSON body)`.
fn route(state: &Arc<State>, request: &HttpRequest, trace_id: u64) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.draining.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            };
            (200, format!(r#"{{"status":"{status}"}}"#))
        }
        ("GET", "/metrics") => (200, metrics_body(state)),
        ("POST", "/shutdown") => {
            initiate_drain(state, state.listen_addr);
            (200, r#"{"status":"draining"}"#.to_owned())
        }
        ("POST", "/simulate") => handle_simulate(state, &request.body, trace_id),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/simulate") => (
            405,
            error_body(
                &format!("method {} not allowed on {}", request.method, request.path),
                trace_id,
            ),
        ),
        (_, path) => (404, error_body(&format!("no route for {path}"), trace_id)),
    }
}

/// Builds the `/metrics` body: service counters, plus the tracing layer's
/// per-stage latency histograms (as `latency-us/<stage>`) and a
/// `latency_summary` block with p50/p90/p99/p999 per stage.
fn metrics_body(state: &Arc<State>) -> String {
    let mut snapshot = MetricsRegistry::new();
    snapshot.merge(&lock_or_recover(&state.metrics));
    let latency = span::latency_snapshot();
    for (stage, stats) in &latency {
        snapshot.put_histogram(&format!("latency-us/{stage}"), stats.histogram.clone());
    }
    let mut body = dynex_obs::export::metrics_json(&snapshot, None);
    // Splice the summary block in before the closing brace, the same way
    // `metrics_json` itself splices the interval series.
    body.pop();
    body.push_str(",\"latency_summary\":");
    body.push_str(&span::summary_json(&latency));
    body.push('}');
    body
}

/// What a simulate handler decided to do under the single-flight lock.
enum Claim {
    /// Result cache hit — answer immediately.
    Hit(SimulationResponse),
    /// An identical request is already in flight — await it.
    Join(Arc<Flight>),
    /// First requester for this key — enqueue and await.
    Lead(Arc<Flight>),
}

/// The `/simulate` endpoint.
fn handle_simulate(state: &Arc<State>, body: &str, trace_id: u64) -> (u16, String) {
    // Captured before any child span opens, so the dispatcher-side simulate
    // span parents directly into this request's root span.
    let root_ctx = span::current();
    let parse = span::span("parse");
    let request = match SimulationRequest::from_json(body) {
        Ok(request) => request,
        Err(e) => return (400, error_body(&e.to_string(), trace_id)),
    };
    let trace = match api::load(&request) {
        Ok(trace) => trace,
        Err(e) => return (400, error_body(&e.to_string(), trace_id)),
    };
    let key = match request.content_key(&trace.addrs) {
        Ok(key) => key,
        Err(e) => return (500, error_body(&e.to_string(), trace_id)),
    };
    drop(parse);
    let deadline = request
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.default_deadline);

    // Single-flight claim. The flights lock is held across the cache probe
    // so the dispatcher's completion order (cache insert, then flight
    // removal) leaves no window where a finished key is in neither place.
    let claim = {
        let _lookup = span::span("cache-lookup");
        let mut flights = lock_or_recover(&state.flights);
        let mut cache = lock_or_recover(&state.cache);
        if let Some(found) = cache.get(&key) {
            let mut response = found.clone();
            response.cached = true;
            Claim::Hit(response)
        } else if let Some(flight) = flights.get(&key) {
            Claim::Join(Arc::clone(flight))
        } else {
            let flight = Arc::new(Flight::new());
            flights.insert(key.clone(), Arc::clone(&flight));
            Claim::Lead(flight)
        }
    };

    let flight = match claim {
        Claim::Hit(response) => {
            state.count("cache-hits");
            return (200, response.to_json());
        }
        Claim::Join(flight) => {
            state.count("coalesced-hits");
            flight
        }
        Claim::Lead(flight) => {
            let sender = lock_or_recover(&state.queue).clone();
            let job = SimJob {
                key: key.clone(),
                request,
                trace,
                flight: Arc::clone(&flight),
                deadline,
                ctx: root_ctx,
            };
            let enqueue = match sender {
                Some(sender) => sender.try_send(job).map_err(|e| match e {
                    TrySendError::Full(_) => (429, "simulation queue is full, retry later"),
                    TrySendError::Disconnected(_) => (503, "service is draining"),
                }),
                None => Err((503, "service is draining")),
            };
            if let Err((status, message)) = enqueue {
                // Wake any joiners that raced onto this flight before
                // withdrawing it — an unfilled flight with no deadline
                // would park them forever.
                flight.fill(Err(FlightError::Rejected(status, message.to_owned())));
                lock_or_recover(&state.flights).remove(&key);
                if status == 429 {
                    state.count("rejected-429");
                }
                return (status, error_body(message, trace_id));
            }
            // Post-enqueue marker: tests poll this to know a job is
            // *waiting* in the queue (vs started, vs merely requested).
            state.count("queued");
            flight
        }
    };

    let waited = {
        let _wait = span::span("queue-wait");
        flight.wait(deadline)
    };
    match waited {
        Ok(Ok(response)) => (200, response.to_json()),
        Ok(Err(FlightError::TimedOut(message))) => (504, error_body(&message, trace_id)),
        Ok(Err(FlightError::Failed(message))) => (500, error_body(&message, trace_id)),
        Ok(Err(FlightError::Rejected(status, message))) => (status, error_body(&message, trace_id)),
        Err(limit) => (
            504,
            error_body(
                &format!(
                    "deadline of {}ms exceeded awaiting the result",
                    limit.as_millis()
                ),
                trace_id,
            ),
        ),
    }
}

/// The dispatcher: drain the queue, batch, execute on the engine, publish.
fn dispatcher(
    state: Arc<State>,
    receiver: Receiver<SimJob>,
    jobs: usize,
    batch_window: Duration,
    sim_delay: Duration,
) {
    loop {
        let first = match receiver.recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and empty: drained
        };
        let mut batch = vec![first];
        if batch_window.is_zero() {
            // Fold in only what has already arrived.
            while batch.len() < MAX_BATCH {
                match receiver.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            }
        } else {
            let window_end = Instant::now() + batch_window;
            while batch.len() < MAX_BATCH {
                let Some(remaining) = window_end.checked_duration_since(Instant::now()) else {
                    break;
                };
                match receiver.recv_timeout(remaining) {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        // The dispatch span is its own root: one batch can carry jobs from
        // several request traces, so it cannot parent into any one of them.
        let _dispatch = span::span("dispatch");
        execute_batch(&state, batch, jobs, sim_delay);
    }
}

/// One schedulable unit of a dispatcher batch: either a single job, or a
/// group of same-trace jobs fused into one sweep-kernel traversal.
enum Unit {
    /// A lone job (batch index), executed exactly as before.
    Single(usize),
    /// Batch indices of two or more jobs over the *same* decoded trace,
    /// answered from one [`api::execute_many`] pass.
    Fused(Vec<usize>),
}

impl Unit {
    fn indices(&self) -> &[usize] {
        match self {
            Unit::Single(index) => std::slice::from_ref(index),
            Unit::Fused(members) => members,
        }
    }
}

/// Plans a dispatcher batch into units: jobs whose organization has a sweep
/// specialization and whose kernel is not `reference` are grouped by decoded
/// trace content; a group of two or more becomes one fused unit so the whole
/// group rides a single `batch_sweep` traversal. Everything else (reference
/// runs, last-line organizations, singleton groups) stays a per-job unit.
/// Grouping is by digest *and* a content check, so a digest collision can
/// never fuse jobs over different traces.
fn plan_units(batch: &[SimJob]) -> Vec<Unit> {
    let mut units = Vec::new();
    // (digest, representative index, members) in first-appearance order.
    let mut groups: Vec<(u64, usize, Vec<usize>)> = Vec::new();
    for (index, job) in batch.iter().enumerate() {
        let sweepable =
            job.request.org.sweep_policy().is_some() && job.request.kernel != Kernel::Reference;
        if !sweepable {
            units.push(Unit::Single(index));
            continue;
        }
        let digest = trace_digest(&job.trace.addrs);
        match groups
            .iter_mut()
            .find(|(d, rep, _)| *d == digest && batch[*rep].trace.addrs == job.trace.addrs)
        {
            Some((_, _, members)) => members.push(index),
            None => groups.push((digest, index, vec![index])),
        }
    }
    for (_, _, members) in groups {
        if members.len() == 1 {
            units.push(Unit::Single(members[0]));
        } else {
            units.push(Unit::Fused(members));
        }
    }
    units
}

/// Runs one batch on the resilient pool and publishes every slot.
///
/// Same-trace sweepable jobs are coalesced (see [`plan_units`]): the fused
/// unit answers every member from one trace traversal, byte-identical to the
/// per-job path because [`api::execute_many`] builds its responses from the
/// same label constructors and content keys as [`api::execute`]. Fault
/// isolation becomes per-unit — a panic or watchdog timeout inside a fused
/// unit fails all of its members together, never the rest of the batch.
fn execute_batch(state: &Arc<State>, batch: Vec<SimJob>, jobs: usize, sim_delay: Duration) {
    lock_or_recover(&state.metrics).add("sims-executed", batch.len() as u64);

    // The engine watchdog is per-job but configured per-plan: use the
    // longest deadline in the batch so no job is reaped earlier than its
    // own budget allows. (Each waiter additionally enforces its own,
    // possibly shorter, deadline on the response path.) A single job
    // without a deadline disables the watchdog for the plan.
    let watchdog = batch
        .iter()
        .map(|job| job.deadline)
        .try_fold(Duration::ZERO, |acc, d| d.map(|d| acc.max(d)));
    let resilience = Resilience {
        max_retries: 0,
        deadline: watchdog,
        ..Resilience::default()
    };

    let units = plan_units(&batch);
    let fused_jobs: usize = units
        .iter()
        .filter(|unit| matches!(unit, Unit::Fused(_)))
        .map(|unit| unit.indices().len())
        .sum();
    if fused_jobs > 0 {
        lock_or_recover(&state.metrics).add("fused-jobs", fused_jobs as u64);
    }

    let items = Arc::new(batch);
    let units = Arc::new(units);
    let sim_state = Arc::clone(state);
    let sim_items = Arc::clone(&items);
    type UnitResults = Vec<(usize, Result<SimulationResponse, String>)>;
    let outcome = execute_resilient(Arc::clone(&units), jobs, resilience, move |unit: &Unit| {
        match unit {
            Unit::Single(index) => {
                let job = &sim_items[*index];
                // Re-enter the leader's request trace on this pool thread so
                // the simulate span (and the kernel chunk spans beneath it)
                // parent into the originating request, not into the dispatch
                // root.
                let _ctx = job.ctx.map(span::enter);
                let _simulate = span::span("simulate");
                sim_state.count("sims-started");
                if !sim_delay.is_zero() {
                    std::thread::sleep(sim_delay);
                }
                let result: UnitResults = vec![(
                    *index,
                    api::execute(&job.request, &job.trace).map_err(|e| e.to_string()),
                )];
                result
            }
            Unit::Fused(members) => {
                // The fused traversal parents into the first member's trace;
                // the other members see it only through their flight result.
                let lead = &sim_items[members[0]];
                let _ctx = lead.ctx.map(span::enter);
                let _simulate = span::span("simulate");
                lock_or_recover(&sim_state.metrics).add("sims-started", members.len() as u64);
                if !sim_delay.is_zero() {
                    std::thread::sleep(sim_delay);
                }
                let requests: Vec<&SimulationRequest> =
                    members.iter().map(|&i| &sim_items[i].request).collect();
                match api::execute_many(&requests, &lead.trace) {
                    Ok(responses) => members
                        .iter()
                        .copied()
                        .zip(responses.into_iter().map(Ok))
                        .collect(),
                    Err(e) => {
                        let message = e.to_string();
                        members.iter().map(|&i| (i, Err(message.clone()))).collect()
                    }
                }
            }
        }
    });

    // Scatter unit outcomes back to per-job slots (plan order is
    // deterministic, and every batch index appears in exactly one unit).
    let mut slots: Vec<Option<FlightResult>> = items.iter().map(|_| None).collect();
    for (unit, slot) in units.iter().zip(outcome.results()) {
        match slot {
            Ok(pairs) => {
                for (index, result) in pairs {
                    slots[*index] = Some(match result {
                        Ok(response) => Ok(response.clone()),
                        Err(message) => Err(FlightError::Failed(message.clone())),
                    });
                }
            }
            Err(unit_error) => {
                let failure = match &unit_error.failure {
                    JobFailure::TimedOut { .. } => FlightError::TimedOut(unit_error.to_string()),
                    JobFailure::Panicked { .. } => FlightError::Failed(unit_error.to_string()),
                };
                for &index in unit.indices() {
                    slots[index] = Some(Err(failure.clone()));
                }
            }
        }
    }

    for (job, slot) in items.iter().zip(slots) {
        let result: FlightResult = slot.unwrap_or_else(|| {
            // Every index is planned into a unit; an empty slot would mean
            // the planner broke its contract. Fail the flight rather than
            // parking its waiters.
            Err(FlightError::Failed(
                "internal error: job missing from batch plan".to_owned(),
            ))
        });
        match &result {
            Ok(response) => {
                // Publish order matters: cache first, then drop the flight
                // (see the claim logic in `handle_simulate`).
                lock_or_recover(&state.cache).insert(&job.key, response.clone());
                if let Some(journal) = lock_or_recover(&state.journal).as_mut() {
                    let value =
                        api::result_to_journal(&response.label, response.stats, response.de);
                    if let Err(e) = journal.record(&job.key, &value) {
                        eprintln!("warning: journal: {e}");
                    }
                }
            }
            Err(FlightError::TimedOut(_)) => state.count("sim-timeouts"),
            Err(FlightError::Failed(_)) => state.count("sim-failures"),
            // Rejections are filled by handlers before enqueueing; a job
            // that reached the dispatcher was never rejected.
            Err(FlightError::Rejected(..)) => unreachable!("rejected jobs are never dispatched"),
        }
        lock_or_recover(&state.flights).remove(&job.key);
        job.flight.fill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_experiments::api::SimulationRequest;

    /// A minimal queued job over the given decoded addresses.
    fn job(org: &str, kernel: &str, addrs: Vec<u32>) -> SimJob {
        let mut builder = SimulationRequest::builder();
        builder.org(org).kernel(kernel);
        SimJob {
            key: format!("{org}/{kernel}/{}", addrs.len()),
            request: builder.build().expect("valid request"),
            trace: LoadedTrace {
                accesses: Vec::new(),
                addrs,
                skipped: 0,
            },
            flight: Arc::new(Flight::new()),
            deadline: None,
            ctx: None,
        }
    }

    fn shape(units: &[Unit]) -> Vec<Vec<usize>> {
        units.iter().map(|u| u.indices().to_vec()).collect()
    }

    #[test]
    fn plan_fuses_same_trace_sweepable_jobs() {
        let shared: Vec<u32> = (0..64).map(|i| i * 4).collect();
        let other: Vec<u32> = (0..64).map(|i| i * 8).collect();
        let batch = vec![
            job("dm", "batch", shared.clone()),
            job("de", "sweep", shared.clone()),
            job("de", "batch", other.clone()),
            job("opt", "batch", shared.clone()),
            job("de", "batch", other),
        ];
        // Indices 0/1/3 share a trace; 2/4 share the other one.
        assert_eq!(shape(&plan_units(&batch)), vec![vec![0, 1, 3], vec![2, 4]]);
    }

    #[test]
    fn plan_keeps_reference_and_unsweepable_jobs_single() {
        let shared: Vec<u32> = (0..64).map(|i| i * 4).collect();
        let batch = vec![
            job("de", "reference", shared.clone()),
            job("de-lastline", "batch", shared.clone()),
            job("dm", "batch", shared.clone()),
            job("de", "batch", shared),
        ];
        // The reference run and the last-line organization stay per-job
        // units (in batch order, ahead of the groups); only 2/3 fuse.
        assert_eq!(
            shape(&plan_units(&batch)),
            vec![vec![0], vec![1], vec![2, 3]]
        );
    }

    #[test]
    fn plan_leaves_singleton_groups_unfused() {
        let a: Vec<u32> = vec![0, 4, 8];
        let b: Vec<u32> = vec![0, 4, 12];
        let batch = vec![job("de", "batch", a), job("de", "batch", b)];
        assert_eq!(shape(&plan_units(&batch)), vec![vec![0], vec![1]]);
    }

    #[test]
    fn plan_never_fuses_across_different_traces() {
        // Same length, different content: must not fuse even though both
        // are sweepable (content equality guards the digest grouping).
        let a: Vec<u32> = (0..1000).map(|i| i * 4).collect();
        let mut b = a.clone();
        b[999] = 0;
        let batch = vec![
            job("dm", "batch", a.clone()),
            job("de", "batch", b),
            job("opt", "batch", a),
        ];
        assert_eq!(shape(&plan_units(&batch)), vec![vec![0, 2], vec![1]]);
    }
}
