//! A minimal HTTP/1.1 client for `Connection: close` JSON exchanges —
//! the counterpart of [`crate::http`].
//!
//! Shared by the shard router (request relay, health probes, metrics
//! fan-out) and the `dynex-load` harness. Speaks exactly the dialect the
//! service emits: one request per connection, a status line, headers
//! terminated by a blank line, and a `Content-Length`-framed body (read to
//! EOF when the header is absent). Everything else is rejected loudly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest accepted status or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per response.
const MAX_HEADERS: usize = 64;
/// Largest accepted response body, in bytes. Larger than the server's
/// request-body cap because merged `/metrics` bodies carry histograms.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The numeric status code.
    pub status: u16,
    /// The `X-Dynex-Trace` header value, when the server sent one.
    pub trace: Option<String>,
    /// The response body.
    pub body: String,
}

/// Reads one CRLF-terminated head line, rejecting oversized lines.
fn read_head_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-response".to_owned()),
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(format!("response header line exceeds {MAX_LINE} bytes"));
                }
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| "response header line is not UTF-8".to_owned())
}

/// Performs one request/response round trip against `addr`.
///
/// `timeout` bounds the connect and each socket read/write individually (a
/// stalled peer cannot wedge the caller for more than one timeout per
/// read). Errors are human-readable transport/framing messages; HTTP error
/// statuses are *not* errors — the caller inspects [`HttpResponse::status`].
pub fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| format!("connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("socket timeouts on {addr}: {e}"))?;

    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write to {addr}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let status_line = read_head_line(&mut reader)?;
    let mut parts = status_line.split_whitespace();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        _ => return Err(format!("bad status line {status_line:?}")),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("status line {status_line:?} has no status code"))?;

    let mut content_length: Option<usize> = None;
    let mut trace = None;
    let mut saw_blank = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_head_line(&mut reader)?;
        if line.is_empty() {
            saw_blank = true;
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed response header {line:?}"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = Some(value.parse().ok().filter(|&n| n <= MAX_BODY).ok_or_else(
                || format!("bad content-length {value:?} (integer up to {MAX_BODY})"),
            )?);
        } else if name == "x-dynex-trace" {
            trace = Some(value.to_owned());
        } else if name == "transfer-encoding" {
            return Err("chunked transfer encoding is not supported".to_owned());
        }
    }
    if !saw_blank {
        return Err(format!("more than {MAX_HEADERS} response headers"));
    }

    let body = match content_length {
        Some(length) => {
            let mut buffer = vec![0u8; length];
            reader
                .read_exact(&mut buffer)
                .map_err(|e| format!("short response body (wanted {length} bytes): {e}"))?;
            String::from_utf8(buffer).map_err(|_| "response body is not UTF-8".to_owned())?
        }
        None => {
            // Connection: close framing — the body runs to EOF.
            let mut buffer = String::new();
            reader
                .take(MAX_BODY as u64 + 1)
                .read_to_string(&mut buffer)
                .map_err(|e| format!("read response body: {e}"))?;
            if buffer.len() > MAX_BODY {
                return Err(format!("response body exceeds {MAX_BODY} bytes"));
            }
            buffer
        }
    };
    Ok(HttpResponse {
        status,
        trace,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serves `raw` bytes to one connection, discarding the request.
    fn serve_once(raw: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain the request head so the client's write never blocks.
            let mut discard = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut discard);
            stream.write_all(raw.as_bytes()).unwrap();
        });
        addr
    }

    fn call_it(raw: &'static str) -> Result<HttpResponse, String> {
        call(serve_once(raw), "GET", "/x", "", Duration::from_secs(5))
    }

    #[test]
    fn parses_a_framed_response_with_trace_header() {
        let response = call_it(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
             X-Dynex-Trace: 00c0ffee00c0ffee\r\nConnection: close\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.trace.as_deref(), Some("00c0ffee00c0ffee"));
        assert_eq!(response.body, "{}");
    }

    #[test]
    fn reads_to_eof_without_content_length() {
        let response = call_it("HTTP/1.1 503 Service Unavailable\r\n\r\nbody-to-eof").unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.trace, None);
        assert_eq!(response.body, "body-to-eof");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(call_it("ICMP nope\r\n\r\n")
            .unwrap_err()
            .contains("bad status line"));
        assert!(call_it("HTTP/1.1 OK\r\n\r\n")
            .unwrap_err()
            .contains("no status code"));
        assert!(call_it("HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\n")
            .unwrap_err()
            .contains("bad content-length"));
        assert!(
            call_it("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort")
                .unwrap_err()
                .contains("short response body")
        );
    }

    #[test]
    fn connect_refused_is_an_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let err = call(addr, "GET", "/x", "", Duration::from_millis(500)).unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }
}
