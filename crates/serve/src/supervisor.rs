//! Shard process supervision for `dynex-serve --shards N`.
//!
//! The router fronts N *processes*, not threads: each shard is a full
//! single-process server (its own LRU, its own warm journal, its own
//! simulation pool) launched from the same binary, so a shard panic or OOM
//! kill never takes the fleet down — the router answers `503` for that
//! shard's keys and everything else keeps serving.
//!
//! Boot protocol: each worker is spawned with `--port 0` and a piped
//! stdout; the supervisor reads the worker's `dynex-serve listening on
//! <addr>` line (the same line the smoke scripts wait for) to learn the
//! ephemeral port, then keeps draining the pipe on a background thread so
//! a chatty child can never block on a full pipe.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The stdout line prefix every worker prints once it is serving.
const LISTENING_PREFIX: &str = "dynex-serve listening on ";

/// One supervised shard worker process.
#[derive(Debug)]
struct ShardChild {
    id: usize,
    child: Child,
}

/// A fleet of shard worker processes behind one router.
///
/// Dropping the fleet kills any children that have not been waited on —
/// an error path that leaks N background servers would otherwise poison
/// every later test or CI job on the machine.
#[derive(Debug)]
pub struct ShardFleet {
    children: Vec<ShardChild>,
    addrs: Vec<SocketAddr>,
}

impl ShardFleet {
    /// Spawns `count` workers from `binary`, passing each the arguments
    /// `worker_args(shard_id)` produces (the supervisor appends
    /// `--port 0` itself), and waits up to `boot_timeout` for each
    /// worker's listening line.
    ///
    /// Fails loudly — with the shard id — if any worker dies or stays
    /// silent before announcing its port; already-started workers are
    /// killed by the fleet's drop.
    pub fn spawn(
        binary: &Path,
        count: usize,
        worker_args: impl Fn(usize) -> Vec<String>,
        boot_timeout: Duration,
    ) -> Result<ShardFleet, String> {
        if count == 0 {
            return Err("--shards needs at least one shard".to_owned());
        }
        let mut fleet = ShardFleet {
            children: Vec::with_capacity(count),
            addrs: Vec::with_capacity(count),
        };
        for id in 0..count {
            let mut child = Command::new(binary)
                .args(worker_args(id))
                .args(["--port", "0"])
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("shard {id}: cannot spawn {}: {e}", binary.display()))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| format!("shard {id}: no stdout pipe"))?;
            fleet.children.push(ShardChild { id, child });

            // The pipe read has no native timeout: a reader thread sends the
            // listening line back, then keeps draining stdout until EOF.
            let (sender, receiver) = mpsc::channel::<Result<SocketAddr, String>>();
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stdout);
                let mut line = String::new();
                let mut announced = false;
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => {
                            if !announced {
                                let _ = sender
                                    .send(Err("exited before announcing its port".to_owned()));
                            }
                            return;
                        }
                        Ok(_) => {
                            if announced {
                                continue; // drain, so the child never blocks
                            }
                            if let Some(rest) = line.trim_end().strip_prefix(LISTENING_PREFIX) {
                                announced = true;
                                let _ = sender.send(
                                    rest.parse::<SocketAddr>()
                                        .map_err(|e| format!("bad listen address {rest:?}: {e}")),
                                );
                            }
                        }
                        Err(e) => {
                            if !announced {
                                let _ = sender.send(Err(format!("stdout read error: {e}")));
                            }
                            return;
                        }
                    }
                }
            });

            let addr = receiver
                .recv_timeout(boot_timeout)
                .map_err(|_| {
                    format!(
                        "shard {id}: no listening line within {}ms",
                        boot_timeout.as_millis()
                    )
                })?
                .map_err(|e| format!("shard {id}: {e}"))?;
            fleet.addrs.push(addr);
        }
        Ok(fleet)
    }

    /// The listen address of every shard, in shard-id order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Waits up to `timeout` for every worker to exit on its own (after a
    /// relayed `POST /shutdown` drain), then kills and reaps stragglers.
    ///
    /// Returns an error naming each shard that had to be killed or exited
    /// unsuccessfully — a drained worker that cannot exit is a leaked
    /// thread somewhere, exactly what the smoke scripts exist to catch.
    pub fn wait(mut self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        let mut failures = Vec::new();
        for shard in &mut self.children {
            loop {
                match shard.child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() {
                            failures.push(format!("shard {} exited with {status}", shard.id));
                        }
                        break;
                    }
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = shard.child.kill();
                            let _ = shard.child.wait();
                            failures.push(format!("shard {} did not exit after drain", shard.id));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        failures.push(format!("shard {}: wait failed: {e}", shard.id));
                        break;
                    }
                }
            }
        }
        self.children.clear();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

impl Drop for ShardFleet {
    fn drop(&mut self) {
        for shard in &mut self.children {
            // Only reached on error paths (normal exit goes through
            // `wait`, which clears the list): make sure no background
            // server outlives the supervisor.
            let _ = shard.child.kill();
            let _ = shard.child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_a_loud_error() {
        let err = ShardFleet::spawn(
            Path::new("/nonexistent"),
            0,
            |_| Vec::new(),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(err.contains("at least one shard"), "{err}");
    }

    #[test]
    fn unspawnable_binary_names_the_shard() {
        let err = ShardFleet::spawn(
            Path::new("/nonexistent-dynex-serve"),
            2,
            |_| Vec::new(),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(err.contains("shard 0"), "{err}");
        assert!(err.contains("cannot spawn"), "{err}");
    }

    // The supervisor appends `--port 0`, so the fake workers below run
    // through `sh -c SCRIPT`, which swallows the extra operands as $0/$1.

    #[test]
    fn silent_worker_times_out_with_shard_id() {
        // Sleeps without ever printing a listening line; the boot must
        // fail fast and kill the child on drop.
        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| vec!["-c".to_owned(), "sleep 30".to_owned()],
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert!(err.contains("shard 0"), "{err}");
        assert!(err.contains("no listening line"), "{err}");
    }

    #[test]
    fn immediately_exiting_worker_is_reported() {
        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| vec!["-c".to_owned(), "exit 0".to_owned()],
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(err.contains("exited before announcing"), "{err}");
    }

    #[test]
    fn listening_line_is_parsed_and_garbage_addresses_fail_loudly() {
        let fleet = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    // Announce, then stay alive briefly like a server would.
                    "echo 'dynex-serve listening on 127.0.0.1:12345'; sleep 30".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(fleet.addrs(), &["127.0.0.1:12345".parse().unwrap()]);
        drop(fleet); // kills the sleeping child

        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    "echo 'dynex-serve listening on not-an-addr'; sleep 30".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(err.contains("bad listen address"), "{err}");
    }
}
