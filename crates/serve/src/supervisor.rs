//! Shard process supervision for `dynex-serve --shards N`.
//!
//! The router fronts N *processes*, not threads: each shard is a full
//! single-process server (its own LRU, its own warm journal, its own
//! simulation pool) launched from the same binary, so a shard panic or OOM
//! kill never takes the fleet down.
//!
//! Since PR 8 the fleet is **self-healing**: a supervisor thread polls
//! every worker with `try_wait` (and is nudged early when the router
//! reports a relay failure through the shared [`ShardDirectory`]), and
//! respawns a dead worker on the *same slot* — same shard id, same
//! `worker_args(id)`, and therefore the same per-suffix warm journal, so
//! the replacement boots with its predecessor's result cache — on a fresh
//! ephemeral port that is swapped into the directory for the router to
//! pick up. Respawns back off exponentially ([`backoff_delay`]: 100ms
//! base, doubling, capped at 5s) so a crash-looping worker cannot melt the
//! box; a worker that stays up past [`BACKOFF_RESET_AFTER`] earns its slot
//! a fresh backoff ladder. Once the deployment drains
//! ([`ShardDirectory::set_draining`]) worker exits are intentional and the
//! supervisor stands down.
//!
//! Boot protocol: each worker is spawned with `--port 0` and a piped
//! stdout; the supervisor reads the worker's `dynex-serve listening on
//! <addr>` line (the same line the smoke scripts wait for) to learn the
//! ephemeral port, then keeps draining the pipe on a background thread so
//! a chatty child can never block on a full pipe. Stderr is piped too:
//! lines are forwarded to the supervisor's stderr *and* kept in a
//! per-worker tail ring so a boot failure can say why the worker died.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::directory::{BreakerState, ShardDirectory};

/// The stdout line prefix every worker prints once it is serving.
const LISTENING_PREFIX: &str = "dynex-serve listening on ";

/// How many trailing stderr lines each worker keeps for post-mortems.
const STDERR_TAIL_LINES: usize = 30;

/// Supervisor poll tick: the worst-case delay between a silent worker
/// death and its detection (router-reported failures nudge earlier).
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// A worker that survives this long gets its slot's backoff ladder reset.
pub const BACKOFF_RESET_AFTER: Duration = Duration::from_secs(30);

/// Respawn backoff for the `attempt`-th consecutive failure of one slot:
/// 100ms, 200ms, 400ms, … capped at 5s.
pub fn backoff_delay(attempt: u32) -> Duration {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 5_000;
    let factor = 1u64 << attempt.min(10);
    Duration::from_millis((BASE_MS.saturating_mul(factor)).min(CAP_MS))
}

/// The last lines a worker wrote to stderr, kept in a bounded ring by the
/// forwarding reader thread.
#[derive(Debug, Clone, Default)]
struct StderrTail(Arc<Mutex<VecDeque<String>>>);

impl StderrTail {
    fn push(&self, line: String) {
        let mut tail = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if tail.len() == STDERR_TAIL_LINES {
            tail.pop_front();
        }
        tail.push_back(line);
    }

    /// The tail as one `; `-joined string, empty when the worker was quiet.
    fn render(&self) -> String {
        let tail = self.0.lock().unwrap_or_else(|e| e.into_inner());
        tail.iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// One supervised shard worker process.
#[derive(Debug)]
struct ShardChild {
    child: Child,
    stderr_tail: StderrTail,
    /// When this worker booted — drives the backoff-ladder reset.
    born: Instant,
    /// Consecutive failed/short-lived spawns on this slot.
    attempt: u32,
}

/// What `spawn_worker` learned about a freshly booted worker.
struct BootedWorker {
    child: Child,
    addr: SocketAddr,
    stderr_tail: StderrTail,
}

/// Spawns one worker and waits for its listening line. On failure the
/// error includes the worker's last stderr lines — the context `Stdio::
/// inherit` used to scroll away.
fn spawn_worker(
    binary: &Path,
    id: usize,
    args: Vec<String>,
    boot_timeout: Duration,
) -> Result<BootedWorker, String> {
    let mut child = Command::new(binary)
        .args(args)
        .args(["--port", "0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("shard {id}: cannot spawn {}: {e}", binary.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| format!("shard {id}: no stdout pipe"))?;
    let stderr = child
        .stderr
        .take()
        .ok_or_else(|| format!("shard {id}: no stderr pipe"))?;

    // Forward stderr lines (operators still see worker logs) while keeping
    // a bounded tail for post-mortems.
    let stderr_tail = StderrTail::default();
    {
        let tail = stderr_tail.clone();
        std::thread::spawn(move || {
            for line in BufReader::new(stderr).lines() {
                let Ok(line) = line else { return };
                eprintln!("[shard {id}] {line}");
                tail.push(line);
            }
        });
    }

    // The pipe read has no native timeout: a reader thread sends the
    // listening line back, then keeps draining stdout until EOF.
    let (sender, receiver) = mpsc::channel::<Result<SocketAddr, String>>();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let mut announced = false;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    if !announced {
                        let _ = sender.send(Err("exited before announcing its port".to_owned()));
                    }
                    return;
                }
                Ok(_) => {
                    if announced {
                        continue; // drain, so the child never blocks
                    }
                    if let Some(rest) = line.trim_end().strip_prefix(LISTENING_PREFIX) {
                        announced = true;
                        let _ = sender.send(
                            rest.parse::<SocketAddr>()
                                .map_err(|e| format!("bad listen address {rest:?}: {e}")),
                        );
                    }
                }
                Err(e) => {
                    if !announced {
                        let _ = sender.send(Err(format!("stdout read error: {e}")));
                    }
                    return;
                }
            }
        }
    });

    let with_stderr = |message: String| {
        // Give the stderr forwarder a beat to drain the pipe of a worker
        // that just died, so the tail actually holds its last words.
        std::thread::sleep(Duration::from_millis(30));
        let tail = stderr_tail.render();
        let mut full = format!("shard {id}: {message}");
        if !tail.is_empty() {
            full.push_str(&format!(" (worker stderr: {tail})"));
        }
        full
    };
    match receiver.recv_timeout(boot_timeout) {
        Ok(Ok(addr)) => Ok(BootedWorker {
            child,
            addr,
            stderr_tail,
        }),
        Ok(Err(message)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(with_stderr(message))
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(with_stderr(format!(
                "no listening line within {}ms",
                boot_timeout.as_millis()
            )))
        }
    }
}

/// Everything the supervisor thread shares with the [`ShardFleet`] handle.
struct FleetInner {
    binary: PathBuf,
    worker_args: Box<dyn Fn(usize) -> Vec<String> + Send + Sync>,
    boot_timeout: Duration,
    /// One slot per shard id; `None` transiently while a slot is down and
    /// its respawn is backing off.
    children: Mutex<Vec<Option<ShardChild>>>,
    directory: Arc<ShardDirectory>,
    stop: AtomicBool,
}

/// A self-healing fleet of shard worker processes behind one router.
///
/// Dropping the fleet stops the supervisor and kills any children that
/// have not been waited on — an error path that leaks N background
/// servers would otherwise poison every later test or CI job on the
/// machine.
pub struct ShardFleet {
    inner: Arc<FleetInner>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `worker_args` is an opaque closure; show the observable state.
        f.debug_struct("ShardFleet")
            .field("binary", &self.inner.binary)
            .field("directory", &self.inner.directory)
            .finish_non_exhaustive()
    }
}

impl ShardFleet {
    /// Spawns `count` workers from `binary`, passing each the arguments
    /// `worker_args(shard_id)` produces (the supervisor appends
    /// `--port 0` itself), waits up to `boot_timeout` for each worker's
    /// listening line, then starts the supervisor thread that keeps the
    /// fleet alive (module docs give the respawn protocol).
    ///
    /// Fails loudly — with the shard id and the worker's last stderr
    /// lines — if any worker dies or stays silent before announcing its
    /// port; already-started workers are killed by the fleet's drop.
    pub fn spawn(
        binary: &Path,
        count: usize,
        worker_args: impl Fn(usize) -> Vec<String> + Send + Sync + 'static,
        boot_timeout: Duration,
    ) -> Result<ShardFleet, String> {
        if count == 0 {
            return Err("--shards needs at least one shard".to_owned());
        }
        let mut children = Vec::with_capacity(count);
        let mut addrs = Vec::with_capacity(count);
        let mut pids = Vec::with_capacity(count);
        for id in 0..count {
            match spawn_worker(binary, id, worker_args(id), boot_timeout) {
                Ok(worker) => {
                    addrs.push(worker.addr);
                    pids.push(worker.child.id());
                    children.push(Some(ShardChild {
                        child: worker.child,
                        stderr_tail: worker.stderr_tail,
                        born: Instant::now(),
                        attempt: 0,
                    }));
                }
                Err(message) => {
                    // Kill the workers that did boot before surfacing the error.
                    for slot in children.iter_mut().flatten() {
                        let _ = slot.child.kill();
                        let _ = slot.child.wait();
                    }
                    return Err(message);
                }
            }
        }
        let directory = Arc::new(ShardDirectory::new(&addrs));
        for (id, pid) in pids.into_iter().enumerate() {
            directory.set_pid(id, pid);
        }
        let inner = Arc::new(FleetInner {
            binary: binary.to_path_buf(),
            worker_args: Box::new(worker_args),
            boot_timeout,
            children: Mutex::new(children),
            directory,
            stop: AtomicBool::new(false),
        });
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || supervise(&inner))
        };
        Ok(ShardFleet {
            inner,
            supervisor: Some(supervisor),
        })
    }

    /// The live fleet state (addresses, pids, respawns, breakers) shared
    /// with the router.
    pub fn directory(&self) -> Arc<ShardDirectory> {
        Arc::clone(&self.inner.directory)
    }

    /// The listen address of every shard, in shard-id order, as currently
    /// recorded in the directory.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        (0..self.inner.directory.len())
            .map(|id| self.inner.directory.addr(id))
            .collect()
    }

    /// Stops the supervisor thread (idempotent). Called before any
    /// teardown so a drain-driven worker exit is never "healed".
    fn stop_supervisor(&mut self) {
        self.inner.directory.set_draining();
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.directory.wake_supervisor();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }

    /// Waits up to `timeout` for every worker to exit on its own (after a
    /// relayed `POST /shutdown` drain), then kills and reaps stragglers.
    ///
    /// Returns an error naming each shard that had to be killed or exited
    /// unsuccessfully — a drained worker that cannot exit is a leaked
    /// thread somewhere, exactly what the smoke scripts exist to catch.
    pub fn wait(mut self, timeout: Duration) -> Result<(), String> {
        self.stop_supervisor();
        let deadline = Instant::now() + timeout;
        let mut failures = Vec::new();
        let mut children = self
            .inner
            .children
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for (id, slot) in children.iter_mut().enumerate() {
            let Some(shard) = slot else { continue };
            loop {
                match shard.child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() {
                            failures.push(format!("shard {id} exited with {status}"));
                        }
                        break;
                    }
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = shard.child.kill();
                            let _ = shard.child.wait();
                            failures.push(format!("shard {id} did not exit after drain"));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        failures.push(format!("shard {id}: wait failed: {e}"));
                        break;
                    }
                }
            }
        }
        children.clear();
        drop(children);
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

impl Drop for ShardFleet {
    fn drop(&mut self) {
        self.stop_supervisor();
        // Only reached on error paths (normal exit goes through `wait`,
        // which clears the list): make sure no background server outlives
        // the supervisor.
        let mut children = self
            .inner
            .children
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for slot in children.iter_mut().flatten() {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
        children.clear();
    }
}

/// A slot whose worker died: when the death was detected (the recovery
/// clock), when the next respawn is due, and its backoff-ladder position.
#[derive(Debug, Clone, Copy)]
struct DownSlot {
    detected: Instant,
    due: Instant,
    attempt: u32,
}

/// The supervisor loop: detect dead workers, respawn them on their slot.
fn supervise(inner: &FleetInner) {
    let mut down: Vec<Option<DownSlot>> = (0..inner.directory.len()).map(|_| None).collect();
    loop {
        if inner.stop.load(Ordering::SeqCst) || inner.directory.draining() {
            return;
        }
        for (id, slot) in down.iter_mut().enumerate() {
            // A router failure report is only a hint; the authoritative
            // death check is the try_wait below, which runs every tick
            // anyway — so the flag is simply consumed.
            let _ = inner.directory.take_suspect(id);
            if let Some(dead) = reap_if_exited(inner, id) {
                *slot = Some(dead);
            }
            respawn_if_due(inner, id, slot);
        }
        inner.directory.wait_for_work(POLL_INTERVAL);
    }
}

/// Reaps slot `id`'s worker if it has exited, returning the down-slot
/// bookkeeping (detection time, first backoff deadline, ladder position).
fn reap_if_exited(inner: &FleetInner, id: usize) -> Option<DownSlot> {
    let mut children = inner.children.lock().unwrap_or_else(|e| e.into_inner());
    let shard = children[id].as_mut()?;
    let status = shard.child.try_wait().ok()??;
    // Long-lived workers earn a fresh backoff ladder; crash-loopers keep
    // climbing it.
    let attempt = if shard.born.elapsed() >= BACKOFF_RESET_AFTER {
        0
    } else {
        shard.attempt + 1
    };
    let tail = shard.stderr_tail.render();
    eprintln!(
        "dynex-serve supervisor: shard {id} (pid {}) exited with {status}{}",
        shard.child.id(),
        if tail.is_empty() {
            String::new()
        } else {
            format!("; stderr: {tail}")
        }
    );
    children[id] = None;
    let detected = Instant::now();
    Some(DownSlot {
        detected,
        due: detected + backoff_delay(attempt),
        attempt,
    })
}

/// Respawns a down slot once its backoff deadline has passed, updating the
/// directory (address, pid, respawn count, recovery time) on success and
/// climbing the backoff ladder on failure.
fn respawn_if_due(inner: &FleetInner, id: usize, down: &mut Option<DownSlot>) {
    let Some(slot) = *down else { return };
    if Instant::now() < slot.due || inner.stop.load(Ordering::SeqCst) || inner.directory.draining()
    {
        return;
    }
    match spawn_worker(
        &inner.binary,
        id,
        (inner.worker_args)(id),
        inner.boot_timeout,
    ) {
        Ok(worker) => {
            let pid = worker.child.id();
            {
                let mut children = inner.children.lock().unwrap_or_else(|e| e.into_inner());
                children[id] = Some(ShardChild {
                    child: worker.child,
                    stderr_tail: worker.stderr_tail,
                    born: Instant::now(),
                    attempt: slot.attempt,
                });
            }
            inner.directory.set_addr(id, worker.addr);
            inner.directory.set_pid(id, pid);
            inner.directory.record_respawn(id, slot.detected.elapsed());
            // Let the very next request through: the worker just proved it
            // boots (listening line). The background probe would get there
            // too, one health interval later.
            inner.directory.set_breaker(id, BreakerState::HalfOpen);
            eprintln!(
                "dynex-serve supervisor: shard {id} respawned as pid {pid} on {} after {:?} (attempt {})",
                worker.addr,
                slot.detected.elapsed(),
                slot.attempt
            );
            *down = None;
        }
        Err(message) => {
            eprintln!("dynex-serve supervisor: shard {id} respawn failed: {message}");
            let attempt = slot.attempt.saturating_add(1);
            *down = Some(DownSlot {
                detected: slot.detected,
                due: Instant::now() + backoff_delay(attempt),
                attempt,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_100ms_and_caps_at_5s() {
        assert_eq!(backoff_delay(0), Duration::from_millis(100));
        assert_eq!(backoff_delay(1), Duration::from_millis(200));
        assert_eq!(backoff_delay(2), Duration::from_millis(400));
        assert_eq!(backoff_delay(5), Duration::from_millis(3200));
        assert_eq!(backoff_delay(6), Duration::from_secs(5));
        assert_eq!(backoff_delay(7), Duration::from_secs(5));
        assert_eq!(
            backoff_delay(u32::MAX),
            Duration::from_secs(5),
            "no overflow"
        );
    }

    #[test]
    fn zero_shards_is_a_loud_error() {
        let err = ShardFleet::spawn(
            Path::new("/nonexistent"),
            0,
            |_| Vec::new(),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(err.contains("at least one shard"), "{err}");
    }

    #[test]
    fn unspawnable_binary_names_the_shard() {
        let err = ShardFleet::spawn(
            Path::new("/nonexistent-dynex-serve"),
            2,
            |_| Vec::new(),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(err.contains("shard 0"), "{err}");
        assert!(err.contains("cannot spawn"), "{err}");
    }

    // The supervisor appends `--port 0`, so the fake workers below run
    // through `sh -c SCRIPT`, which swallows the extra operands as $0/$1.

    #[test]
    fn silent_worker_times_out_with_shard_id() {
        // Sleeps without ever printing a listening line; the boot must
        // fail fast and kill the child on drop.
        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| vec!["-c".to_owned(), "sleep 30".to_owned()],
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert!(err.contains("shard 0"), "{err}");
        assert!(err.contains("no listening line"), "{err}");
    }

    #[test]
    fn immediately_exiting_worker_is_reported_with_its_stderr() {
        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    "echo 'boot panic: no trace dir' >&2; exit 3".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(err.contains("exited before announcing"), "{err}");
        assert!(
            err.contains("boot panic: no trace dir"),
            "boot error must carry the worker's stderr tail: {err}"
        );
    }

    #[test]
    fn listening_line_is_parsed_and_garbage_addresses_fail_loudly() {
        let fleet = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    // Announce, then stay alive briefly like a server would.
                    "echo 'dynex-serve listening on 127.0.0.1:12345'; sleep 30".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(fleet.addrs(), vec!["127.0.0.1:12345".parse().unwrap()]);
        drop(fleet); // kills the sleeping child

        let err = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    "echo 'dynex-serve listening on not-an-addr'; sleep 30".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(err.contains("bad listen address"), "{err}");
    }

    #[test]
    fn dead_worker_is_respawned_on_its_slot_with_a_fresh_pid() {
        // A fake worker that announces and dies 200ms later: the supervisor
        // must detect the exit and respawn the slot (each incarnation
        // announces the same fake address — the directory swap still runs).
        let fleet = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    "echo 'dynex-serve listening on 127.0.0.1:12345'; sleep 0.2".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap();
        let directory = fleet.directory();
        let first_pid = directory.pid(0);
        assert_ne!(first_pid, 0);

        // Worker dies at +200ms, detection within one poll tick, backoff
        // 100ms, boot is instant — well inside 5s.
        let deadline = Instant::now() + Duration::from_secs(5);
        while directory.respawns(0) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(directory.respawns(0) >= 1, "no respawn within 5s");
        assert_ne!(
            directory.pid(0),
            first_pid,
            "replacement must be a new process"
        );
        assert_eq!(directory.breaker(0), BreakerState::HalfOpen);
        assert!(
            directory.recovery_histogram().total() >= 1,
            "recovery time must be recorded"
        );
        drop(fleet);
    }

    #[test]
    fn draining_fleet_lets_workers_die_in_peace() {
        let fleet = ShardFleet::spawn(
            Path::new("/bin/sh"),
            1,
            |_| {
                vec![
                    "-c".to_owned(),
                    "echo 'dynex-serve listening on 127.0.0.1:12345'; sleep 0.15".to_owned(),
                ]
            },
            Duration::from_secs(5),
        )
        .unwrap();
        let directory = fleet.directory();
        directory.set_draining();
        // The worker exits on its own; wait() must treat that as a clean
        // drain, not a death to heal.
        fleet.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(directory.respawns(0), 0);
    }
}
