//! The shard directory: live fleet state shared between the supervisor
//! (which respawns dead workers) and the router (which places traffic and
//! trips circuit breakers).
//!
//! One slot per shard id, fixed for the life of the deployment — placement
//! is rendezvous-hashed over the slot *index*, so a slot's address may
//! change on every respawn but its key range never moves (the PR 7
//! invariant: a key is never silently re-routed to a different shard).
//!
//! Each slot carries:
//!
//! - the worker's current listen **address** (swapped atomically under a
//!   mutex when the supervisor boots a replacement),
//! - its **pid** (so `/healthz` can expose it and a chaos harness can kill
//!   it) and a **respawn** count,
//! - the router's **circuit breaker** for the slot
//!   ([`BreakerState`]): `Closed` relays normally; a transport failure
//!   opens it; while `Open` the router fast-fails `503` without touching a
//!   socket; a background probe success moves it to `HalfOpen`, and the
//!   next relayed success closes it,
//! - a **suspect** flag the router raises on relay failure to nudge the
//!   supervisor ahead of its next poll tick.
//!
//! The directory also aggregates fleet-level recovery telemetry
//! (`recovery-us` histogram, total respawns) that the router folds into
//! the merged `/metrics`, and the deployment-wide `draining` latch that
//! stops the supervisor from respawning workers the drain just shut down.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use dynex_obs::span::LATENCY_BUCKETS_MAX_EXP;
use dynex_obs::Histogram;

/// See the sibling in `server.rs`: every value behind a directory lock is
/// updated atomically-or-not-at-all, so recovery is safe.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The router's per-shard circuit breaker state (module docs give the
/// transition rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Relaying normally.
    Closed = 0,
    /// Fast-failing without a socket touch until a probe succeeds.
    Open = 1,
    /// Probe succeeded; the next relayed request decides.
    HalfOpen = 2,
}

impl BreakerState {
    /// The state as it appears in `/healthz` rows.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    fn from_u8(raw: u8) -> BreakerState {
        match raw {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// One shard slot (see module docs for the field roles).
#[derive(Debug)]
struct ShardSlot {
    addr: Mutex<SocketAddr>,
    pid: AtomicU32,
    respawns: AtomicU64,
    breaker: AtomicU8,
    suspect: AtomicBool,
}

/// Live fleet state, one fixed slot per shard id.
#[derive(Debug)]
pub struct ShardDirectory {
    slots: Vec<ShardSlot>,
    draining: AtomicBool,
    /// Supervisor wake-up: flipped true by [`ShardDirectory::report_failure`]
    /// (and on drain/stop) so death detection does not wait out a poll tick.
    nudge: (Mutex<bool>, Condvar),
    recovery_us: Mutex<Histogram>,
}

impl ShardDirectory {
    /// A directory over `addrs`, one slot per shard in id order, pids
    /// unknown (0), breakers closed.
    pub fn new(addrs: &[SocketAddr]) -> ShardDirectory {
        ShardDirectory {
            slots: addrs
                .iter()
                .map(|&addr| ShardSlot {
                    addr: Mutex::new(addr),
                    pid: AtomicU32::new(0),
                    respawns: AtomicU64::new(0),
                    breaker: AtomicU8::new(BreakerState::Closed as u8),
                    suspect: AtomicBool::new(false),
                })
                .collect(),
            draining: AtomicBool::new(false),
            nudge: (Mutex::new(false), Condvar::new()),
            recovery_us: Mutex::new(Histogram::pow2(LATENCY_BUCKETS_MAX_EXP)),
        }
    }

    /// Number of shard slots (fixed for the deployment's life).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the directory has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot's current worker address.
    pub fn addr(&self, shard: usize) -> SocketAddr {
        *lock_or_recover(&self.slots[shard].addr)
    }

    /// Swaps in a replacement worker's address.
    pub fn set_addr(&self, shard: usize, addr: SocketAddr) {
        *lock_or_recover(&self.slots[shard].addr) = addr;
    }

    /// The slot's current worker pid (0 when unknown — e.g. in-process
    /// shards).
    pub fn pid(&self, shard: usize) -> u32 {
        self.slots[shard].pid.load(Ordering::SeqCst)
    }

    /// Records the slot's current worker pid.
    pub fn set_pid(&self, shard: usize, pid: u32) {
        self.slots[shard].pid.store(pid, Ordering::SeqCst);
    }

    /// How many times this slot's worker has been respawned.
    pub fn respawns(&self, shard: usize) -> u64 {
        self.slots[shard].respawns.load(Ordering::SeqCst)
    }

    /// Total respawns across the fleet (the `shard-respawns` counter).
    pub fn total_respawns(&self) -> u64 {
        self.slots
            .iter()
            .map(|slot| slot.respawns.load(Ordering::SeqCst))
            .sum()
    }

    /// Counts one completed respawn for the slot and records how long the
    /// slot was dark (death detected → replacement serving).
    pub fn record_respawn(&self, shard: usize, recovery: Duration) {
        self.slots[shard].respawns.fetch_add(1, Ordering::SeqCst);
        lock_or_recover(&self.recovery_us)
            .record(recovery.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Snapshot of the fleet `recovery-us` histogram.
    pub fn recovery_histogram(&self) -> Histogram {
        lock_or_recover(&self.recovery_us).clone()
    }

    /// The slot's breaker state.
    pub fn breaker(&self, shard: usize) -> BreakerState {
        BreakerState::from_u8(self.slots[shard].breaker.load(Ordering::SeqCst))
    }

    /// Moves the slot's breaker to `state` unconditionally.
    pub fn set_breaker(&self, shard: usize, state: BreakerState) {
        self.slots[shard]
            .breaker
            .store(state as u8, Ordering::SeqCst);
    }

    /// Compare-and-swap breaker transition; `true` when it won (so exactly
    /// one of many racing handlers counts the `router-breaker-open` event).
    pub fn breaker_transition(&self, shard: usize, from: BreakerState, to: BreakerState) -> bool {
        self.slots[shard]
            .breaker
            .compare_exchange(from as u8, to as u8, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Router-side failure report: flags the slot suspect and wakes the
    /// supervisor so it checks the worker now instead of at the next poll.
    pub fn report_failure(&self, shard: usize) {
        self.slots[shard].suspect.store(true, Ordering::SeqCst);
        self.wake_supervisor();
    }

    /// Clears and returns the slot's suspect flag (supervisor side).
    pub fn take_suspect(&self, shard: usize) -> bool {
        self.slots[shard].suspect.swap(false, Ordering::SeqCst)
    }

    /// Wakes a [`ShardDirectory::wait_for_work`] sleeper immediately.
    pub fn wake_supervisor(&self) {
        let (flag, signal) = &self.nudge;
        *lock_or_recover(flag) = true;
        signal.notify_all();
    }

    /// Supervisor poll sleep: blocks up to `timeout`, returning early when
    /// nudged ([`ShardDirectory::report_failure`], drain, stop).
    pub fn wait_for_work(&self, timeout: Duration) {
        let (flag, signal) = &self.nudge;
        let mut nudged = lock_or_recover(flag);
        if !*nudged {
            let (guard, _) = signal
                .wait_timeout(nudged, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            nudged = guard;
        }
        *nudged = false;
    }

    /// `true` once the deployment-wide drain has started.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Latches the deployment-wide drain: from here on the supervisor
    /// treats worker exits as intentional and stops respawning.
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.wake_supervisor();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn slots_start_closed_unknown_pid_and_swap_addresses() {
        let dir = ShardDirectory::new(&[addr(1000), addr(2000)]);
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.addr(1), addr(2000));
        assert_eq!(dir.pid(0), 0);
        assert_eq!(dir.breaker(0), BreakerState::Closed);
        dir.set_addr(1, addr(2001));
        dir.set_pid(1, 42);
        assert_eq!(dir.addr(1), addr(2001));
        assert_eq!(dir.pid(1), 42);
    }

    #[test]
    fn breaker_cas_lets_exactly_one_opener_win() {
        let dir = ShardDirectory::new(&[addr(1000)]);
        assert!(dir.breaker_transition(0, BreakerState::Closed, BreakerState::Open));
        assert!(
            !dir.breaker_transition(0, BreakerState::Closed, BreakerState::Open),
            "second opener must lose the race"
        );
        assert_eq!(dir.breaker(0), BreakerState::Open);
        assert_eq!(dir.breaker(0).as_str(), "open");
        dir.set_breaker(0, BreakerState::HalfOpen);
        assert_eq!(dir.breaker(0).as_str(), "half-open");
        assert!(dir.breaker_transition(0, BreakerState::HalfOpen, BreakerState::Closed));
        assert_eq!(dir.breaker(0).as_str(), "closed");
    }

    #[test]
    fn respawn_accounting_sums_across_slots_and_records_recovery() {
        let dir = ShardDirectory::new(&[addr(1000), addr(2000)]);
        dir.record_respawn(0, Duration::from_millis(250));
        dir.record_respawn(0, Duration::from_millis(500));
        dir.record_respawn(1, Duration::from_millis(125));
        assert_eq!(dir.respawns(0), 2);
        assert_eq!(dir.respawns(1), 1);
        assert_eq!(dir.total_respawns(), 3);
        let histogram = dir.recovery_histogram();
        assert_eq!(histogram.total(), 3);
        assert!(histogram.quantile(1.0).unwrap() >= 500_000);
    }

    #[test]
    fn report_failure_nudges_a_sleeping_supervisor() {
        let dir = std::sync::Arc::new(ShardDirectory::new(&[addr(1000)]));
        let sleeper = {
            let dir = std::sync::Arc::clone(&dir);
            std::thread::spawn(move || {
                let start = Instant::now();
                dir.wait_for_work(Duration::from_secs(30));
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        dir.report_failure(0);
        let slept = sleeper.join().unwrap();
        assert!(
            slept < Duration::from_secs(5),
            "nudge lost: slept {slept:?}"
        );
        assert!(dir.take_suspect(0));
        assert!(!dir.take_suspect(0), "suspect flag must clear on take");
    }

    #[test]
    fn drain_latch_is_sticky() {
        let dir = ShardDirectory::new(&[addr(1000)]);
        assert!(!dir.draining());
        dir.set_draining();
        assert!(dir.draining());
    }
}
