//! The shard router: a thin front tier that places requests onto N
//! single-process [`crate::Server`] shards and relays their responses
//! byte-identically.
//!
//! # Placement
//!
//! Each request is hashed to a shard with **rendezvous (highest-random-
//! weight) hashing** over [`SimulationRequest::routing_key`] — the cheap
//! FNV-1a key over the request fields that determine the PR 3 content key,
//! computable without decoding the trace. Rendezvous hashing gives the two
//! properties the satellite tests pin down: placement is balanced (each
//! shard wins ≈ 1/N of the key space), and growing the fleet from N to N+1
//! shards remaps only the ≈ 1/(N+1) of keys whose new maximum weight is the
//! new shard — every other key keeps its shard, and its shard's warm LRU.
//!
//! # Relay contract
//!
//! The router never rewrites a shard response: status, body bytes, and the
//! shard's `X-Dynex-Trace` header are forwarded verbatim, so a client
//! cannot distinguish a routed response from a direct one. The router
//! answers from its own trace id only for requests that never reached a
//! shard: parse failures (`400`) and dead shards (`503`, with the shard id
//! in the JSON body — loud, attributable failure instead of a silent
//! retry-elsewhere that would split the cache).
//!
//! # Fault handling
//!
//! Shard addresses come from a live [`ShardDirectory`] (shared with the
//! [`crate::ShardFleet`] supervisor when one is running), and each slot
//! carries a circuit breaker ([`BreakerState`]): a relay transport failure
//! opens it (counted in `router-breaker-open`) and reports the failure to
//! the supervisor; while open, the slot's keys fast-fail `503` without a
//! socket touch; a background-probe success moves it to half-open, and the
//! next successfully relayed request closes it. A keyed request that hits
//! a transport error gets **one** bounded retry — against the *same*
//! shard, after re-reading the slot's address, so a just-respawned worker
//! picks the request up. Never another shard: simulations are
//! deterministic and content-keyed, and re-routing would split the warm
//! cache (the PR 7 invariant).
//!
//! # Aggregation
//!
//! `GET /metrics` fans out to every shard, merges the per-shard registries
//! ([`MetricsRegistry::merge`]: counters summed, latency histograms
//! bucket-merged), rebuilds the cross-fleet `latency_summary` from the
//! merged histograms, and appends the router's own `router-*` counters and
//! a per-shard reachability table. `GET /healthz` reports the background
//! health-probe view of the fleet without blocking on it.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use dynex_engine::fnv1a;
use dynex_experiments::api::SimulationRequest;
use dynex_obs::json::{self, Json};
use dynex_obs::span::{self, StageStats};
use dynex_obs::MetricsRegistry;

use crate::client::{self, HttpResponse};
use crate::directory::{BreakerState, ShardDirectory};
use crate::http::{
    read_request, write_response, write_response_relayed, write_response_traced, HttpRequest,
};

/// Locks `mutex`, recovering the guard when a previous holder panicked
/// (see the sibling in `server.rs` for why recovery is safe here: every
/// value behind a router lock is updated atomically-or-not-at-all).
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Finalizing bit mixer (the splitmix64/murmur3 finalizer). FNV-1a alone
/// avalanches poorly in its low bits for short inputs; rendezvous hashing
/// compares per-shard weights, so weak mixing would skew placement.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Rendezvous (highest-random-weight) shard placement for a routing key.
///
/// Deterministic: every router instance (and every test) agrees on the
/// placement of a key for a given shard count.
///
/// # Panics
///
/// Panics if `shards` is zero — a router with no shards is a configuration
/// error, caught at [`Router::start`].
pub fn shard_for_key(key: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard_for_key needs at least one shard");
    let key_hash = fnv1a(key.as_bytes());
    (0..shards)
        .max_by_key(|&shard| mix64(key_hash ^ mix64(shard as u64 + 1)))
        .expect("non-empty shard range")
}

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Interface to bind (default loopback).
    pub host: String,
    /// TCP port to bind; 0 picks an ephemeral port (see [`Router::addr`]).
    pub port: u16,
    /// The shard servers to front, in shard-id order. Must be non-empty.
    pub shards: Vec<SocketAddr>,
    /// Transport timeout for relaying one `/simulate` to a shard (connect,
    /// and each read/write). Generous: a shard enforces its own request
    /// deadlines; this bound only catches a dead or wedged shard.
    pub relay_timeout: Duration,
    /// Transport timeout for health probes and metrics fan-out.
    pub probe_timeout: Duration,
    /// How often the background health thread probes each shard.
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            shards: Vec::new(),
            relay_timeout: Duration::from_secs(60),
            probe_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(500),
        }
    }
}

/// State shared between the acceptor, handlers, and the health thread.
struct RouterState {
    /// Live shard addresses, pids, respawn counts, and breaker states —
    /// shared with the supervising [`crate::ShardFleet`] when one runs.
    directory: Arc<ShardDirectory>,
    metrics: Mutex<MetricsRegistry>,
    draining: AtomicBool,
    /// Wakes the health thread early on drain.
    drain_signal: (Mutex<bool>, Condvar),
    /// Live handler-thread count; `join` waits for it to reach zero.
    handlers: (Mutex<usize>, Condvar),
    listen_addr: SocketAddr,
    relay_timeout: Duration,
    probe_timeout: Duration,
}

impl RouterState {
    fn count(&self, name: &str) {
        lock_or_recover(&self.metrics).add(name, 1);
    }

    /// Trips the slot's breaker open (any state), counting the event once
    /// per actual transition — concurrent failing handlers race on a CAS.
    fn open_breaker(&self, shard: usize) {
        for from in [BreakerState::Closed, BreakerState::HalfOpen] {
            if self
                .directory
                .breaker_transition(shard, from, BreakerState::Open)
            {
                self.count("router-breaker-open");
                return;
            }
        }
    }
}

/// Decrements the live-handler count when a handler thread exits, panics
/// included (see `server.rs`).
struct HandlerGuard(Arc<RouterState>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        let (count, woken) = &self.0.handlers;
        let mut count = lock_or_recover(count);
        *count -= 1;
        if *count == 0 {
            woken.notify_all();
        }
    }
}

/// One `{"error":…}` body from the router itself (the request never
/// reached a shard), stamped with the router-side trace id.
fn error_body(message: &str, trace_id: u64) -> String {
    format!(
        r#"{{"error":"{}","trace_id":"{}"}}"#,
        json::escape(message),
        span::trace_hex(trace_id)
    )
}

/// A running shard router.
///
/// Dropping the handle does *not* stop the router; call
/// [`Router::shutdown`] then [`Router::join`] (or hit `POST /shutdown`,
/// which also drains every shard).
pub struct Router {
    state: Arc<RouterState>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    health: JoinHandle<()>,
}

impl Router {
    /// Binds the socket over a fixed shard list (a directory nobody
    /// updates) and spawns the acceptor and health-probe threads. For a
    /// supervised fleet whose addresses change on respawn, use
    /// [`Router::start_with`].
    pub fn start(config: RouterConfig) -> Result<Router, crate::ServeError> {
        let directory = Arc::new(ShardDirectory::new(&config.shards));
        Router::start_with(config, directory)
    }

    /// Binds the socket over a live [`ShardDirectory`] (shared with a
    /// [`crate::ShardFleet`] supervisor, whose respawns swap slot
    /// addresses under the router) and spawns the acceptor and
    /// health-probe threads. `config.shards` is ignored — the directory is
    /// the address authority.
    pub fn start_with(
        config: RouterConfig,
        directory: Arc<ShardDirectory>,
    ) -> Result<Router, crate::ServeError> {
        if directory.is_empty() {
            return Err(crate::ServeError::Bind(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            )));
        }
        span::enable_latency();
        let listener = TcpListener::bind((config.host.as_str(), config.port))
            .map_err(crate::ServeError::Bind)?;
        let addr = listener.local_addr().map_err(crate::ServeError::Bind)?;

        let mut metrics = MetricsRegistry::new();
        for name in [
            "router-requests-total",
            "router-routed",
            "router-shard-errors",
            "router-health-probes",
            "router-breaker-open",
            "router-relay-retries",
        ] {
            metrics.add(name, 0);
        }
        for shard in 0..directory.len() {
            metrics.add(&format!("router-routed-shard-{shard}"), 0);
        }

        let state = Arc::new(RouterState {
            directory,
            metrics: Mutex::new(metrics),
            draining: AtomicBool::new(false),
            drain_signal: (Mutex::new(false), Condvar::new()),
            handlers: (Mutex::new(0), Condvar::new()),
            listen_addr: addr,
            relay_timeout: config.relay_timeout,
            probe_timeout: config.probe_timeout,
        });

        let health = {
            let state = Arc::clone(&state);
            let interval = config.health_interval;
            std::thread::spawn(move || health_loop(state, interval))
        };
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || acceptor(state, listener))
        };

        Ok(Router {
            state,
            addr,
            acceptor,
            health,
        })
    }

    /// The bound address (the real port when `port: 0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reads one router counter (e.g. `"router-routed"`).
    pub fn counter(&self, name: &str) -> u64 {
        lock_or_recover(&self.state.metrics).counter(name)
    }

    /// The breaker view of one shard: `true` while its circuit is closed
    /// (relaying normally), `false` once a probe or relay failure opened
    /// it and until a relayed request closes it again.
    pub fn shard_healthy(&self, shard: usize) -> bool {
        self.state.directory.breaker(shard) == BreakerState::Closed
    }

    /// The live shard directory the router routes over.
    pub fn directory(&self) -> Arc<ShardDirectory> {
        Arc::clone(&self.state.directory)
    }

    /// Starts a graceful drain of the *router* (stop accepting, finish
    /// in-flight relays). Does not touch the shards — that is `POST
    /// /shutdown`'s job, so an embedder can drain the front tier while
    /// keeping the fleet up.
    pub fn shutdown(&self) {
        initiate_drain(&self.state);
    }

    /// Blocks until the router has drained, then joins its threads.
    pub fn join(self) {
        self.acceptor.join().expect("router acceptor thread");
        let (count, woken) = &self.state.handlers;
        let mut count = lock_or_recover(count);
        while *count > 0 {
            count = woken.wait(count).unwrap_or_else(PoisonError::into_inner);
        }
        drop(count);
        self.health.join().expect("router health thread");
    }
}

/// Flips the draining flag, wakes the health thread, and unblocks the
/// acceptor's blocking `accept` with a throwaway self-connection.
fn initiate_drain(state: &RouterState) {
    state.draining.store(true, Ordering::SeqCst);
    let (flag, signal) = &state.drain_signal;
    *lock_or_recover(flag) = true;
    signal.notify_all();
    let _ = TcpStream::connect(state.listen_addr);
}

/// Background shard health probe: `GET /healthz` on every shard, each
/// `interval`, until drain. Probe outcomes drive the breakers: a failure
/// opens the slot's circuit, a success on an open circuit moves it to
/// half-open (the next relayed request decides whether it closes).
fn health_loop(state: Arc<RouterState>, interval: Duration) {
    let (flag, signal) = &state.drain_signal;
    loop {
        for shard in 0..state.directory.len() {
            let addr = state.directory.addr(shard);
            let alive = client::call(addr, "GET", "/healthz", "", state.probe_timeout)
                .map(|response| response.status == 200)
                .unwrap_or(false);
            if alive {
                state.directory.breaker_transition(
                    shard,
                    BreakerState::Open,
                    BreakerState::HalfOpen,
                );
            } else {
                state.open_breaker(shard);
            }
        }
        state.count("router-health-probes");
        let mut draining = lock_or_recover(flag);
        while !*draining {
            let (guard, timed_out) = signal
                .wait_timeout(draining, interval)
                .unwrap_or_else(PoisonError::into_inner);
            draining = guard;
            if timed_out.timed_out() {
                break;
            }
        }
        if *draining {
            return;
        }
    }
}

/// Accept loop: one short-lived handler thread per connection.
fn acceptor(state: Arc<RouterState>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.draining.load(Ordering::SeqCst) {
            refuse(stream);
            let _ = listener.set_nonblocking(true);
            while let Ok((stream, _)) = listener.accept() {
                refuse(stream);
            }
            return;
        }
        let (count, _) = &state.handlers;
        *lock_or_recover(count) += 1;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let _guard = HandlerGuard(Arc::clone(&state));
            handle_connection(&state, stream);
        });
    }
}

/// Answers a connection caught by the drain with an explicit `503`.
fn refuse(mut stream: TcpStream) {
    let _ = write_response(&mut stream, 503, r#"{"error":"router is draining"}"#);
}

/// How a routed request gets answered on the wire.
enum Reply {
    /// The router speaks for itself (health, metrics, errors): status,
    /// body, and the router's own trace id.
    Own(u16, String),
    /// A shard response to forward byte-identically.
    Relay(HttpResponse),
}

/// Serves one connection: parse, route or relay, respond, close.
fn handle_connection(state: &Arc<RouterState>, mut stream: TcpStream) {
    let trace_id = span::fresh_trace_id();
    let _request = span::root_span("router.request", trace_id);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(message) => {
            let _ =
                write_response_traced(&mut stream, 400, &error_body(&message, trace_id), trace_id);
            return;
        }
    };
    state.count("router-requests-total");
    let _respond = span::span("router.respond");
    match route(state, &request, trace_id) {
        Reply::Own(status, body) => {
            let _ = write_response_traced(&mut stream, status, &body, trace_id);
        }
        Reply::Relay(response) => {
            let _ = write_response_relayed(
                &mut stream,
                response.status,
                &response.body,
                response.trace.as_deref(),
            );
        }
    }
}

/// Maps a parsed request to a [`Reply`].
fn route(state: &Arc<RouterState>, request: &HttpRequest, trace_id: u64) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Reply::Own(200, healthz_body(state)),
        ("GET", "/metrics") => Reply::Own(200, metrics_body(state)),
        ("POST", "/shutdown") => {
            // Drain the whole deployment. The directory latch comes first
            // so a supervising fleet treats the worker exits below as
            // intentional instead of respawning them mid-drain; then every
            // shard (best effort — a dead shard cannot block the drain),
            // then the router.
            state.directory.set_draining();
            for shard in 0..state.directory.len() {
                let addr = state.directory.addr(shard);
                let _ = client::call(addr, "POST", "/shutdown", "", state.probe_timeout);
            }
            initiate_drain(state);
            Reply::Own(200, r#"{"status":"draining"}"#.to_owned())
        }
        ("POST", "/simulate") => handle_simulate(state, &request.body, trace_id),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/simulate") => Reply::Own(
            405,
            error_body(
                &format!("method {} not allowed on {}", request.method, request.path),
                trace_id,
            ),
        ),
        (_, path) => Reply::Own(404, error_body(&format!("no route for {path}"), trace_id)),
    }
}

/// The router `/healthz` body: drain state plus the breaker view of the
/// fleet — per shard its address, worker pid (0 when the shards are not
/// supervised processes), respawn count, and breaker state, so operators
/// and the chaos harness see fleet health without grepping supervisor
/// logs. Reads cached directory state — never blocks on a shard.
fn healthz_body(state: &Arc<RouterState>) -> String {
    let mut down = 0usize;
    let mut shards = String::new();
    for shard in 0..state.directory.len() {
        let addr = state.directory.addr(shard);
        let breaker = state.directory.breaker(shard);
        let healthy = breaker == BreakerState::Closed;
        if !healthy {
            down += 1;
        }
        if shard > 0 {
            shards.push(',');
        }
        shards.push_str(&format!(
            r#"{{"id":{shard},"addr":"{addr}","healthy":{healthy},"pid":{},"respawns":{},"breaker":"{}"}}"#,
            state.directory.pid(shard),
            state.directory.respawns(shard),
            breaker.as_str()
        ));
    }
    let status = if state.draining.load(Ordering::SeqCst) {
        "draining"
    } else if down > 0 {
        "degraded"
    } else {
        "ok"
    };
    format!(r#"{{"status":"{status}","shards":[{shards}]}}"#)
}

/// The aggregate `/metrics` body: every reachable shard's registry merged
/// (counters summed, histograms bucket-merged), a `latency_summary`
/// rebuilt from the merged per-stage histograms, the router's own
/// `router-*` counters, and a per-shard merge status table.
fn metrics_body(state: &Arc<RouterState>) -> String {
    let mut merged = MetricsRegistry::new();
    merged.merge(&lock_or_recover(&state.metrics));
    // Fleet-recovery telemetry lives in the directory (the supervisor
    // writes it); fold it in so one /metrics scrape sees the whole story.
    merged.set("shard-respawns", state.directory.total_respawns());
    merged.put_histogram("recovery-us", state.directory.recovery_histogram());
    let mut stage_totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut shard_rows = String::new();
    for shard in 0..state.directory.len() {
        let addr = state.directory.addr(shard);
        let fetched = client::call(addr, "GET", "/metrics", "", state.probe_timeout)
            .ok()
            .filter(|response| response.status == 200)
            .and_then(|response| json::parse(&response.body).ok())
            .and_then(|doc| {
                let registry = MetricsRegistry::from_json(&doc).ok()?;
                // The summary block carries the per-stage totals the
                // histograms alone cannot reconstruct.
                if let Some(Json::Obj(summary)) = doc.get("latency_summary") {
                    for (stage, stats) in summary {
                        let total = stats.get("total_us").and_then(Json::as_u64).unwrap_or(0);
                        *stage_totals.entry(stage.clone()).or_insert(0) += total;
                    }
                }
                Some(registry)
            });
        let ok = match fetched {
            Some(registry) => {
                merged.merge(&registry);
                true
            }
            None => {
                state.count("router-shard-errors");
                false
            }
        };
        if shard > 0 {
            shard_rows.push(',');
        }
        shard_rows.push_str(&format!(
            r#"{{"id":{shard},"addr":"{addr}","merged":{ok}}}"#
        ));
    }

    // Rebuild the fleet-wide latency summary from the merged histograms.
    let mut stages: BTreeMap<String, StageStats> = BTreeMap::new();
    for (name, histogram) in merged.histograms() {
        if let Some(stage) = name.strip_prefix("latency-us/") {
            stages.insert(
                stage.to_owned(),
                StageStats {
                    histogram: histogram.clone(),
                    total_us: stage_totals.get(stage).copied().unwrap_or(0),
                },
            );
        }
    }
    let mut body = dynex_obs::export::metrics_json(&merged, None);
    body.pop();
    body.push_str(",\"latency_summary\":");
    body.push_str(&span::summary_json(&stages));
    body.push_str(&format!(",\"shards\":[{shard_rows}]}}"));
    body
}

/// The shard-unavailable `503` body (router-origin: carries the shard id
/// and the router's trace id, never shard bytes).
fn unavailable_body(shard: usize, message: &str, trace_id: u64) -> String {
    format!(
        r#"{{"error":"shard {shard} unavailable: {}","shard":{shard},"trace_id":"{}"}}"#,
        json::escape(message),
        span::trace_hex(trace_id)
    )
}

/// The `/simulate` relay: validate, place, forward, fail loudly.
///
/// Fault path (module docs): an open breaker fast-fails without a socket
/// touch; a transport error earns one same-shard retry against the
/// slot's *current* address (a respawn may have swapped it mid-flight);
/// two transport errors open the breaker and wake the supervisor.
fn handle_simulate(state: &Arc<RouterState>, body: &str, trace_id: u64) -> Reply {
    let request = match SimulationRequest::from_json(body) {
        Ok(request) => request,
        Err(e) => return Reply::Own(400, error_body(&e.to_string(), trace_id)),
    };
    let key = match request.routing_key() {
        Ok(key) => key,
        Err(e) => return Reply::Own(500, error_body(&e.to_string(), trace_id)),
    };
    let shard = shard_for_key(&key, state.directory.len());
    state.count("router-routed");
    state.count(&format!("router-routed-shard-{shard}"));
    if state.directory.breaker(shard) == BreakerState::Open {
        state.count("router-shard-errors");
        return Reply::Own(503, unavailable_body(shard, "circuit open", trace_id));
    }
    // The original body is forwarded, not a re-serialization: the shard
    // parses and validates exactly what the client sent.
    let mut last_error = String::new();
    for attempt in 0..2 {
        if attempt > 0 {
            state.count("router-relay-retries");
        }
        let addr = state.directory.addr(shard);
        match client::call(addr, "POST", "/simulate", body, state.relay_timeout) {
            Ok(response) => {
                // A relayed response is authoritative evidence the worker
                // serves: close the breaker (half-open → closed on the
                // probe-recovery path, and heal any racing open).
                state.directory.set_breaker(shard, BreakerState::Closed);
                return Reply::Relay(response);
            }
            Err(message) => last_error = message,
        }
    }
    // Loud, attributable failure: the shard id lands in the error body so
    // an operator (or the load harness's error taxonomy) sees *which*
    // shard died, the breaker opens without waiting for the next probe,
    // and the supervisor is nudged to check the worker now.
    state.open_breaker(shard);
    state.directory.report_failure(shard);
    state.count("router-shard-errors");
    Reply::Own(503, unavailable_body(shard, &last_error, trace_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_engine::job_key;

    /// 10k synthetic content keys shaped like the real ones (16-hex
    /// `job_key` digests).
    fn synthetic_keys() -> Vec<String> {
        (0..10_000)
            .map(|i| job_key(&["simcache/v1", "de", "all", &format!("key {i}")]))
            .collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let key = "0123456789abcdef";
        assert_eq!(shard_for_key(key, 1), 0);
        for shards in 1..8 {
            let place = shard_for_key(key, shards);
            assert!(place < shards);
            assert_eq!(place, shard_for_key(key, shards), "deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_a_loud_error() {
        shard_for_key("k", 0);
    }

    #[test]
    fn placement_balances_within_1_5x_of_mean() {
        // Satellite: over 10k synthetic content keys, no shard may hold
        // more than 1.5x the mean — rendezvous over a well-mixed hash
        // keeps the spread far tighter, but 1.5x is the contract.
        for shards in [2usize, 3, 4, 8] {
            let mut counts = vec![0u64; shards];
            for key in synthetic_keys() {
                counts[shard_for_key(&key, shards)] += 1;
            }
            let mean = 10_000.0 / shards as f64;
            for (shard, &count) in counts.iter().enumerate() {
                assert!(
                    (count as f64) <= 1.5 * mean,
                    "shard {shard}/{shards} holds {count} keys (mean {mean})"
                );
                assert!(count > 0, "shard {shard}/{shards} is empty");
            }
        }
    }

    #[test]
    fn adding_a_shard_remaps_only_one_over_n_keys() {
        // Satellite: growing N -> N+1 must remap ~1/(N+1) of keys, and
        // rendezvous gives the strong form — a remapped key can only move
        // TO the new shard (its old weights are unchanged).
        for old in [2usize, 4] {
            let new = old + 1;
            let mut moved = 0u64;
            for key in synthetic_keys() {
                let before = shard_for_key(&key, old);
                let after = shard_for_key(&key, new);
                if before != after {
                    moved += 1;
                    assert_eq!(
                        after,
                        new - 1,
                        "key {key} moved between surviving shards ({before} -> {after})"
                    );
                }
            }
            // Binomial(10k, 1/new): a +-30% band is ~20 sigma.
            let expected = 10_000.0 / new as f64;
            assert!(
                (moved as f64) > 0.7 * expected && (moved as f64) < 1.3 * expected,
                "{old}->{new} shards moved {moved} keys (expected ~{expected})"
            );
        }
    }

    #[test]
    fn router_refuses_to_start_with_no_shards() {
        let Err(err) = Router::start(RouterConfig::default()) else {
            panic!("router started with an empty shard list");
        };
        assert!(err.to_string().contains("at least one shard"), "{err}");
    }
}
