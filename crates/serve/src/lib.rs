//! `dynex-serve` — a batching, result-caching sweep service over the
//! [`dynex_experiments::api::SimulationRequest`] API.
//!
//! The service turns the workspace's offline sweep machinery into a
//! long-running process: clients `POST` request JSON to `/simulate` and get
//! the same bytes an offline `simcache` run would print (modulo framing) —
//! same content keys, same journal records, same statistics, for every
//! worker count. On top of plain execution it adds what only a resident
//! process can:
//!
//! * **single-flight coalescing** — concurrent identical requests run one
//!   simulation and share the result;
//! * **batching** — distinct requests arriving close together are folded
//!   into one [`dynex_engine::execute_resilient`] plan, inheriting the
//!   PR 3 panic containment and watchdog;
//! * **result caching** — an exact LRU keyed by the journal content key,
//!   warm-startable from any `--resume` journal at boot;
//! * **explicit backpressure** — a bounded queue that answers `429` instead
//!   of buffering without bound;
//! * **observability** — `/metrics` serves a `dynex-obs` registry snapshot,
//!   `/healthz` the drain state, and `POST /shutdown` drains gracefully.
//!
//! The HTTP layer is a deliberate minimum (hermetic workspace, no
//! third-party crates): HTTP/1.1, `Connection: close`, JSON bodies.
//!
//! # Scale-out
//!
//! For more cores than one process should own, the crate also provides the
//! sharded tier behind `dynex-serve --shards N`: a [`Router`] that places
//! requests onto N single-process servers with rendezvous hashing over
//! [`shard_for_key`] and relays shard responses byte-identically (see the
//! `router` module docs), and a [`ShardFleet`] supervisor that launches
//! the N worker processes and keeps them alive — a dead worker is
//! respawned on its slot with capped exponential backoff and comes back
//! warm from its per-suffix journal, while the router's per-shard circuit
//! breakers ([`BreakerState`]) fast-fail its keys in the interim. The two
//! halves share a [`ShardDirectory`] (live addresses, pids, respawn
//! counts, breaker states). The [`client`] module is the matching minimal
//! HTTP client, shared with the `dynex-load` harness.
//!
//! # Example
//!
//! ```no_run
//! use dynex_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // parks until POST /shutdown
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod directory;
mod http;
mod lru;
mod router;
mod server;
mod supervisor;

pub use client::HttpResponse;
pub use directory::{BreakerState, ShardDirectory};
pub use http::HttpRequest;
pub use lru::LruCache;
pub use router::{shard_for_key, Router, RouterConfig};
pub use server::{ServeConfig, ServeError, Server};
pub use supervisor::{backoff_delay, ShardFleet, BACKOFF_RESET_AFTER};
