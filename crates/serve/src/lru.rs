//! A small, exact LRU map for simulation results.
//!
//! Recency is tracked with a monotonically increasing stamp per entry and a
//! `BTreeMap<stamp, key>` ordered index: `get` bumps the stamp, `insert`
//! evicts the smallest stamp once the capacity is exceeded. Every operation
//! is `O(log n)`; there are no background threads and no clocks, so cache
//! behaviour is a pure function of the operation sequence (which keeps the
//! service's responses deterministic under test).

use std::collections::{BTreeMap, HashMap};

/// An exact least-recently-used map from `String` keys to values.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    next_stamp: u64,
    entries: HashMap<String, (u64, V)>,
    recency: BTreeMap<u64, String>,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// is a cache that never retains anything (every insert immediately
    /// evicts), which the service uses to disable result caching.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity,
            next_stamp: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let stamp = self.next_stamp;
        let entry = self.entries.get_mut(key)?;
        self.recency.remove(&entry.0);
        entry.0 = stamp;
        self.recency.insert(stamp, key.to_owned());
        self.next_stamp += 1;
        Some(&entry.1)
    }

    /// Inserts `key`, evicting the least recently used entry when the cache
    /// is over capacity. An existing key is overwritten and bumped.
    pub fn insert(&mut self, key: &str, value: V) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((old_stamp, _)) = self.entries.insert(key.to_owned(), (stamp, value)) {
            self.recency.remove(&old_stamp);
        }
        self.recency.insert(stamp, key.to_owned());
        while self.entries.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("recency tracks entries");
            let victim = self.recency.remove(&oldest).expect("stamp just observed");
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get("a"), Some(&1)); // bump a over b
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
    }

    #[test]
    fn overwrite_replaces_and_bumps() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // overwrite: a is now most recent
        lru.insert("c", 3); // evicts b, not a
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("c"), Some(&3));
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut lru = LruCache::new(0);
        lru.insert("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get("a"), None);
    }
}
