//! A small, exact LRU map for simulation results.
//!
//! Recency is tracked with a monotonically increasing stamp per entry and a
//! `BTreeMap<stamp, key>` ordered index: `get` bumps the stamp, `insert`
//! evicts the smallest stamp once the capacity is exceeded. Every operation
//! is `O(log n)`; there are no background threads and no clocks, so cache
//! behaviour is a pure function of the operation sequence (which keeps the
//! service's responses deterministic under test).

use std::collections::{BTreeMap, HashMap};

/// An exact least-recently-used map from `String` keys to values.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    next_stamp: u64,
    entries: HashMap<String, (u64, V)>,
    recency: BTreeMap<u64, String>,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// is a cache that never retains anything (every insert immediately
    /// evicts), which the service uses to disable result caching.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity,
            next_stamp: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let stamp = self.next_stamp;
        let entry = self.entries.get_mut(key)?;
        self.recency.remove(&entry.0);
        entry.0 = stamp;
        self.recency.insert(stamp, key.to_owned());
        self.next_stamp += 1;
        Some(&entry.1)
    }

    /// Inserts `key`, evicting the least recently used entry when the cache
    /// is over capacity. An existing key is overwritten and bumped.
    pub fn insert(&mut self, key: &str, value: V) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((old_stamp, _)) = self.entries.insert(key.to_owned(), (stamp, value)) {
            self.recency.remove(&old_stamp);
        }
        self.recency.insert(stamp, key.to_owned());
        while self.entries.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("recency tracks entries");
            let victim = self.recency.remove(&oldest).expect("stamp just observed");
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get("a"), Some(&1)); // bump a over b
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
    }

    #[test]
    fn overwrite_replaces_and_bumps() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // overwrite: a is now most recent
        lru.insert("c", 3); // evicts b, not a
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("c"), Some(&3));
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut lru = LruCache::new(0);
        lru.insert("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get("a"), None);
    }

    #[test]
    fn capacity_one_holds_exactly_the_latest_insert() {
        let mut lru = LruCache::new(1);
        lru.insert("a", 1);
        assert_eq!(lru.get("a"), Some(&1));
        lru.insert("b", 2); // evicts a
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get("a"), None);
        assert_eq!(lru.get("b"), Some(&2));
        // A get cannot save the sole entry from the next insert...
        assert_eq!(lru.get("b"), Some(&2));
        lru.insert("c", 3);
        assert_eq!(lru.get("b"), None);
        // ...but re-inserting the same key replaces in place.
        lru.insert("c", 30);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get("c"), Some(&30));
    }

    #[test]
    fn reinsert_moves_to_front_of_recency_order() {
        let mut lru = LruCache::new(3);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        lru.insert("a", 10); // a becomes most recent; b is now oldest
        lru.insert("d", 4); // evicts b
        assert_eq!(lru.get("b"), None);
        lru.insert("e", 5); // evicts c (a was re-inserted after c)
        assert_eq!(lru.get("c"), None);
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.get("d"), Some(&4));
        assert_eq!(lru.get("e"), Some(&5));
    }

    /// A trivially-correct LRU model: a `HashMap` for contents and a
    /// `VecDeque` holding keys from least to most recently used.
    struct ModelLru {
        capacity: usize,
        map: HashMap<String, i64>,
        order: std::collections::VecDeque<String>,
    }

    impl ModelLru {
        fn new(capacity: usize) -> ModelLru {
            ModelLru {
                capacity,
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }
        }

        fn touch(&mut self, key: &str) {
            self.order.retain(|k| k != key);
            self.order.push_back(key.to_owned());
        }

        fn get(&mut self, key: &str) -> Option<i64> {
            let value = self.map.get(key).copied()?;
            self.touch(key);
            Some(value)
        }

        fn insert(&mut self, key: &str, value: i64) {
            self.map.insert(key.to_owned(), value);
            self.touch(key);
            while self.map.len() > self.capacity {
                let victim = self.order.pop_front().expect("order tracks map");
                self.map.remove(&victim);
            }
        }
    }

    #[test]
    fn matches_model_under_interleaved_get_put() {
        // Property test against the model, with the workspace's own PRNG
        // (hermetic builds cannot reach proptest): thousands of randomized
        // get/insert interleavings over a small key space at several
        // capacities, checking every get result — which pins down the
        // whole eviction order, since a wrongly evicted (or wrongly
        // retained) key surfaces as a mismatched get within a few steps.
        let mut rng = dynex_cache::SplitMix64::new(0x1ab_cafe);
        for capacity in [1usize, 2, 3, 7] {
            for round in 0..8 {
                let mut real = LruCache::new(capacity);
                let mut model = ModelLru::new(capacity);
                for step in 0..2_000 {
                    // Key space a bit larger than capacity so evictions
                    // and re-inserts both happen constantly.
                    let key = format!("k{}", rng.below(capacity as u64 * 2 + 2));
                    if rng.chance(0.5) {
                        let value = rng.next_u64() as i64;
                        real.insert(&key, value);
                        model.insert(&key, value);
                    } else {
                        assert_eq!(
                            real.get(&key).copied(),
                            model.get(&key),
                            "capacity {capacity} round {round} step {step} key {key}"
                        );
                    }
                    assert_eq!(real.len(), model.map.len());
                }
            }
        }
    }
}
