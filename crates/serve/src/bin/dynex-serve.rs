//! `dynex-serve` — serve cache simulations over HTTP.
//!
//! ```text
//! dynex-serve [--host ADDR] [--port N] [--jobs N] [--queue N] [--cache N]
//!             [--batch-window-ms N] [--deadline-ms N] [--warm-journal FILE]
//!             [--journal-sync flush|fsync] [--trace-out FILE] [--shards N]
//! ```
//!
//! Binds (default `127.0.0.1:0` — an ephemeral port, printed on stdout),
//! then serves until `POST /shutdown` drains it:
//!
//! * `POST /simulate` — a [`dynex_experiments::api::SimulationRequest`] as
//!   JSON; responds with the simulation result JSON.
//! * `GET /metrics` — service counters as JSON.
//! * `GET /healthz` — liveness/drain state.
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued work.
//!
//! `--warm-journal` points at a `simcache --resume` / `experiments
//! --resume` journal: checkpointed results pre-populate the result cache
//! and fresh results are appended, so service restarts never recompute.
//! `--journal-sync` picks how far each append travels before the response
//! goes out: `flush` (the default) drains to the OS — a `kill -9` of the
//! worker cannot lose a recorded result — while `fsync` adds `fdatasync`
//! per record, surviving power loss at one disk round-trip per append.
//!
//! `--trace-out FILE` streams every span the service closes as JSONL —
//! one `{"trace":…,"span":…,"parent":…,"stage":…,"start_us":…,"dur_us":…}`
//! line per span. The trace id echoed in each response's `X-Dynex-Trace`
//! header (and in JSON error bodies) keys into this stream.
//!
//! `--shards N` switches to the scale-out topology: N worker *processes*
//! (each this same binary, each a full single-process server with its own
//! LRU, queue, and simulation pool) are spawned on ephemeral ports behind
//! a router bound to `--host`/`--port`. The router speaks the same four
//! endpoints, places `/simulate` requests with rendezvous hashing over the
//! request's routing key, relays shard responses byte-identically, merges
//! `/metrics` across the fleet, and fails loudly (`503` naming the shard)
//! when a worker dies. The fleet is self-healing: a supervisor thread
//! detects dead workers and respawns them on the same slot (same shard
//! id, same per-shard journal — the replacement boots warm) with capped
//! exponential backoff, while the router's per-shard circuit breaker
//! fast-fails the slot's keys until the replacement answers a probe.
//! `--warm-journal FILE` becomes the *base* path: shard `i` warms from
//! and appends to `FILE.shard-i`, so concurrent workers never interleave
//! writes in one journal. `--trace-out` applies to the router process
//! only.

use std::process::ExitCode;
use std::time::Duration;

use dynex_engine::SyncPolicy;
use dynex_serve::{Router, RouterConfig, ServeConfig, Server, ShardFleet};

fn usage() {
    eprintln!(
        "usage: dynex-serve [--host ADDR] [--port N] [--jobs N] [--queue N] [--cache N] \
         [--batch-window-ms N] [--deadline-ms N] [--warm-journal FILE] \
         [--journal-sync flush|fsync] [--trace-out FILE] [--shards N]"
    );
    eprintln!();
    eprintln!("  --host ADDR           interface to bind (default 127.0.0.1)");
    eprintln!("  --port N              port to bind; 0 picks one (default 0, printed on stdout)");
    eprintln!("  --jobs N              simulation worker threads (default: all cores)");
    eprintln!("  --queue N             bounded queue depth; full queue answers 429 (default 64)");
    eprintln!("  --cache N             LRU result-cache entries; 0 disables (default 1024)");
    eprintln!("  --batch-window-ms N   how long to gather requests per plan (default 2)");
    eprintln!("  --deadline-ms N       default per-request deadline (default: none)");
    eprintln!(
        "  --warm-journal FILE   warm the cache from a --resume journal; append fresh results"
    );
    eprintln!(
        "  --journal-sync MODE   flush (default: survives kill -9) or fsync (survives power loss)"
    );
    eprintln!("  --trace-out FILE      stream closed spans as JSONL (request → kernel chunk)");
    eprintln!(
        "  --shards N            spawn N worker processes behind a router (default 0: \
         single-process mode)"
    );
}

fn parse_args() -> Result<Option<(ServeConfig, Option<String>, usize)>, String> {
    let mut config = ServeConfig::default();
    let mut trace_out = None;
    let mut shards = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--host" => config.host = value_of("--host")?,
            "--port" => {
                let value = value_of("--port")?;
                config.port = value
                    .parse()
                    .map_err(|_| format!("bad --port value {value:?}"))?;
            }
            "--jobs" => {
                let value = value_of("--jobs")?;
                config.jobs = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --jobs value {value:?}"))?;
            }
            "--queue" => {
                let value = value_of("--queue")?;
                config.queue_capacity = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --queue value {value:?} (positive integer)"))?;
            }
            "--cache" => {
                let value = value_of("--cache")?;
                config.cache_capacity = value
                    .parse()
                    .map_err(|_| format!("bad --cache value {value:?}"))?;
            }
            "--batch-window-ms" => {
                let value = value_of("--batch-window-ms")?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --batch-window-ms value {value:?}"))?;
                config.batch_window = Duration::from_millis(ms);
            }
            "--deadline-ms" => {
                let value = value_of("--deadline-ms")?;
                let ms: u64 = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --deadline-ms value {value:?}"))?;
                config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--warm-journal" => {
                config.warm_journal = Some(value_of("--warm-journal")?.into());
            }
            "--journal-sync" => {
                config.journal_sync = SyncPolicy::parse(&value_of("--journal-sync")?)?;
            }
            "--trace-out" => trace_out = Some(value_of("--trace-out")?),
            "--shards" => {
                let value = value_of("--shards")?;
                shards = value
                    .parse()
                    .map_err(|_| format!("bad --shards value {value:?}"))?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some((config, trace_out, shards)))
}

/// The worker-process argument vector for shard `shard` — the parsed
/// config re-serialized, minus the listen port (the supervisor appends
/// `--port 0`) and with the warm journal fanned out per shard.
fn worker_args(config: &ServeConfig, shard: usize) -> Vec<String> {
    let mut args = vec!["--host".to_owned(), config.host.clone()];
    if config.jobs > 0 {
        args.extend(["--jobs".to_owned(), config.jobs.to_string()]);
    }
    args.extend(["--queue".to_owned(), config.queue_capacity.to_string()]);
    args.extend(["--cache".to_owned(), config.cache_capacity.to_string()]);
    args.extend([
        "--batch-window-ms".to_owned(),
        config.batch_window.as_millis().to_string(),
    ]);
    if let Some(deadline) = config.default_deadline {
        args.extend(["--deadline-ms".to_owned(), deadline.as_millis().to_string()]);
    }
    if let Some(base) = &config.warm_journal {
        // Per-shard journals: N processes appending to one file would
        // interleave records; each shard owns `<base>.shard-<i>` instead.
        // A respawned shard re-derives the same suffix, which is what
        // makes warm recovery work.
        let mut path = base.as_os_str().to_owned();
        path.push(format!(".shard-{shard}"));
        args.extend([
            "--warm-journal".to_owned(),
            path.to_string_lossy().into_owned(),
        ]);
    }
    args.extend(["--journal-sync".to_owned(), config.journal_sync.to_string()]);
    args
}

/// Runs the `--shards N` topology: spawn the fleet, front it with a
/// router, serve until drained, then reap every worker.
fn run_sharded(config: ServeConfig, shards: usize) -> ExitCode {
    let binary = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: cannot locate own binary for worker spawn: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The supervisor re-invokes this closure on every respawn: the same
    // shard id re-derives the same per-shard journal suffix, so the
    // replacement worker boots warm.
    let worker_config = config.clone();
    let fleet = match ShardFleet::spawn(
        &binary,
        shards,
        move |shard| worker_args(&worker_config, shard),
        Duration::from_secs(30),
    ) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Router and supervisor share the live directory: respawns swap in
    // new worker addresses under the router, relay failures nudge the
    // supervisor.
    let router = match Router::start_with(
        RouterConfig {
            host: config.host.clone(),
            port: config.port,
            ..RouterConfig::default()
        },
        fleet.directory(),
    ) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE; // fleet drop kills the workers
        }
    };
    for (shard, addr) in fleet.addrs().iter().enumerate() {
        eprintln!("shard {shard} listening on {addr}");
    }
    // The same line scripts and tests wait for in single-process mode.
    println!("dynex-serve listening on {}", router.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    router.join(); // POST /shutdown relays the drain to every shard first
    dynex_obs::span::take_jsonl_writer();
    if let Err(e) = fleet.wait(Duration::from_secs(15)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("dynex-serve router and {shards} shard(s) drained, exiting");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let (config, shards) = match parse_args() {
        Ok(Some((config, trace_out, shards))) => {
            if let Some(path) = trace_out {
                // Installed before the server boots so even startup-adjacent
                // spans land in the stream.
                if let Err(e) = dynex_obs::span::install_jsonl_path(&path) {
                    eprintln!("error: cannot open --trace-out {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            (config, shards)
        }
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if shards > 0 {
        return run_sharded(config, shards);
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmed = server.counter("warm-start-entries");
    if warmed > 0 {
        eprintln!("warm start: {warmed} cached result(s) loaded from the journal");
    }
    // The line scripts and tests wait for; stdout and flushed.
    println!("dynex-serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    server.join();
    // Drop (and flush) any --trace-out stream before exiting.
    dynex_obs::span::take_jsonl_writer();
    eprintln!("dynex-serve drained, exiting");
    ExitCode::SUCCESS
}
