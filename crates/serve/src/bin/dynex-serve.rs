//! `dynex-serve` — serve cache simulations over HTTP.
//!
//! ```text
//! dynex-serve [--host ADDR] [--port N] [--jobs N] [--queue N] [--cache N]
//!             [--batch-window-ms N] [--deadline-ms N] [--warm-journal FILE]
//!             [--trace-out FILE]
//! ```
//!
//! Binds (default `127.0.0.1:0` — an ephemeral port, printed on stdout),
//! then serves until `POST /shutdown` drains it:
//!
//! * `POST /simulate` — a [`dynex_experiments::api::SimulationRequest`] as
//!   JSON; responds with the simulation result JSON.
//! * `GET /metrics` — service counters as JSON.
//! * `GET /healthz` — liveness/drain state.
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued work.
//!
//! `--warm-journal` points at a `simcache --resume` / `experiments
//! --resume` journal: checkpointed results pre-populate the result cache
//! and fresh results are appended, so service restarts never recompute.
//!
//! `--trace-out FILE` streams every span the service closes as JSONL —
//! one `{"trace":…,"span":…,"parent":…,"stage":…,"start_us":…,"dur_us":…}`
//! line per span. The trace id echoed in each response's `X-Dynex-Trace`
//! header (and in JSON error bodies) keys into this stream.

use std::process::ExitCode;
use std::time::Duration;

use dynex_serve::{ServeConfig, Server};

fn usage() {
    eprintln!(
        "usage: dynex-serve [--host ADDR] [--port N] [--jobs N] [--queue N] [--cache N] \
         [--batch-window-ms N] [--deadline-ms N] [--warm-journal FILE] [--trace-out FILE]"
    );
    eprintln!();
    eprintln!("  --host ADDR           interface to bind (default 127.0.0.1)");
    eprintln!("  --port N              port to bind; 0 picks one (default 0, printed on stdout)");
    eprintln!("  --jobs N              simulation worker threads (default: all cores)");
    eprintln!("  --queue N             bounded queue depth; full queue answers 429 (default 64)");
    eprintln!("  --cache N             LRU result-cache entries; 0 disables (default 1024)");
    eprintln!("  --batch-window-ms N   how long to gather requests per plan (default 2)");
    eprintln!("  --deadline-ms N       default per-request deadline (default: none)");
    eprintln!(
        "  --warm-journal FILE   warm the cache from a --resume journal; append fresh results"
    );
    eprintln!("  --trace-out FILE      stream closed spans as JSONL (request → kernel chunk)");
}

fn parse_args() -> Result<Option<(ServeConfig, Option<String>)>, String> {
    let mut config = ServeConfig::default();
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--host" => config.host = value_of("--host")?,
            "--port" => {
                let value = value_of("--port")?;
                config.port = value
                    .parse()
                    .map_err(|_| format!("bad --port value {value:?}"))?;
            }
            "--jobs" => {
                let value = value_of("--jobs")?;
                config.jobs = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --jobs value {value:?}"))?;
            }
            "--queue" => {
                let value = value_of("--queue")?;
                config.queue_capacity = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --queue value {value:?} (positive integer)"))?;
            }
            "--cache" => {
                let value = value_of("--cache")?;
                config.cache_capacity = value
                    .parse()
                    .map_err(|_| format!("bad --cache value {value:?}"))?;
            }
            "--batch-window-ms" => {
                let value = value_of("--batch-window-ms")?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --batch-window-ms value {value:?}"))?;
                config.batch_window = Duration::from_millis(ms);
            }
            "--deadline-ms" => {
                let value = value_of("--deadline-ms")?;
                let ms: u64 = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --deadline-ms value {value:?}"))?;
                config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--warm-journal" => {
                config.warm_journal = Some(value_of("--warm-journal")?.into());
            }
            "--trace-out" => trace_out = Some(value_of("--trace-out")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some((config, trace_out)))
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(Some((config, trace_out))) => {
            if let Some(path) = trace_out {
                // Installed before the server boots so even startup-adjacent
                // spans land in the stream.
                if let Err(e) = dynex_obs::span::install_jsonl_path(&path) {
                    eprintln!("error: cannot open --trace-out {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            config
        }
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmed = server.counter("warm-start-entries");
    if warmed > 0 {
        eprintln!("warm start: {warmed} cached result(s) loaded from the journal");
    }
    // The line scripts and tests wait for; stdout and flushed.
    println!("dynex-serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    server.join();
    // Drop (and flush) any --trace-out stream before exiting.
    dynex_obs::span::take_jsonl_writer();
    eprintln!("dynex-serve drained, exiting");
    ExitCode::SUCCESS
}
