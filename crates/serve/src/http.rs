//! A minimal, hand-rolled HTTP/1.1 subset — just enough to serve JSON over
//! `Connection: close` request/response pairs.
//!
//! The workspace is hermetic (no third-party crates), so this module speaks
//! exactly the dialect the service needs: one request per connection, a
//! request line, headers terminated by a blank line, and an optional
//! `Content-Length`-framed body. Chunked transfer encoding, keep-alive, and
//! multi-line headers are out of scope and rejected loudly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target (path), as sent; query strings are not split off.
    pub path: String,
    /// The request body (empty when no `Content-Length` header was present).
    pub body: String,
}

/// Reads one line of an HTTP request head, rejecting oversized lines.
fn read_head_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-request".to_owned()),
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(format!("header line exceeds {MAX_LINE} bytes"));
                }
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| "header line is not UTF-8".to_owned())
}

/// Reads and parses one request from the stream.
///
/// Fails with a human-readable message on any framing violation; the caller
/// turns that into a `400 Bad Request`.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut reader = BufReader::new(stream);
    let request_line = read_head_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_owned())?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| format!("request line {request_line:?} has no path"))?
        .to_owned();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        Some(version) => return Err(format!("unsupported protocol version {version:?}")),
        None => return Err(format!("request line {request_line:?} has no version")),
    }

    let mut content_length = 0usize;
    for _ in 0..=MAX_HEADERS {
        let line = read_head_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("short body (wanted {content_length} bytes): {e}"))?;
            let body =
                String::from_utf8(body).map_err(|_| "request body is not UTF-8".to_owned())?;
            return Ok(HttpRequest { method, path, body });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .ok()
                .filter(|&n| n <= MAX_BODY)
                .ok_or_else(|| {
                    format!("bad content-length {value:?} (integer up to {MAX_BODY})")
                })?;
        } else if name == "transfer-encoding" {
            return Err("chunked transfer encoding is not supported".to_owned());
        }
    }
    Err(format!("more than {MAX_HEADERS} headers"))
}

/// The reason phrase for the handful of status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes; the connection is then closed.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_headed_response(stream, status, body, None)
}

/// [`write_response`] stamped with the request's trace id: every routed
/// response carries `X-Dynex-Trace: <16 hex digits>` so a client can quote
/// the id when correlating against a `--trace-out` span stream.
pub fn write_response_traced(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    trace_id: u64,
) -> std::io::Result<()> {
    let header = format!(
        "X-Dynex-Trace: {}\r\n",
        dynex_obs::span::trace_hex(trace_id)
    );
    write_headed_response(stream, status, body, Some(&header))
}

/// Relays a response the router received from a shard, byte-identically:
/// same status, same body, and the shard's own `X-Dynex-Trace` value (the
/// router must not re-stamp a relayed response with its own trace id).
/// Header order matches [`write_response_traced`], so the bytes a client
/// sees through the router equal the bytes the shard wrote.
pub fn write_response_relayed(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    trace: Option<&str>,
) -> std::io::Result<()> {
    let header = trace.map(|value| format!("X-Dynex-Trace: {value}\r\n"));
    write_headed_response(stream, status, body, header.as_deref())
}

fn write_headed_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_header: Option<&str>,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        status,
        reason(status),
        body.len(),
        extra_header.unwrap_or("")
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket pair into `read_request`.
    fn parse(raw: &str) -> Result<HttpRequest, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        client.flush().unwrap();
        // Half-close so a parser waiting for more body bytes sees EOF
        // instead of blocking on the open socket.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_a_post_with_a_body() {
        let request =
            parse("POST /simulate HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nbody").unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/simulate");
        assert_eq!(request.body, "body");
    }

    #[test]
    fn parses_a_bare_get() {
        let request = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.body, "");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(parse("GET /x\r\n\r\n").unwrap_err().contains("no version"));
        assert!(parse("GET /x SPDY/3\r\n\r\n")
            .unwrap_err()
            .contains("unsupported protocol"));
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
            .unwrap_err()
            .contains("bad content-length"));
        assert!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .contains("chunked")
        );
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort")
            .unwrap_err()
            .contains("short body"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for status in [200, 400, 404, 405, 429, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown");
        }
        assert_eq!(reason(418), "Unknown");
    }
}
