//! End-to-end self-healing test against the real `dynex-serve` binary:
//! a 2-shard fleet with warm journals, one worker `SIGKILL`ed mid-flight.
//!
//! The contract under test is the PR's tentpole: the surviving shard keeps
//! answering throughout (no error ever reaches its keys), the supervisor
//! respawns the dead worker on its own slot, the replacement boots warm
//! from the per-shard journal, and the first post-respawn response for the
//! killed shard's key is **byte-identical** to the cached response the old
//! worker served before dying — a crash is invisible except as latency.
//!
//! This drives the spawned process over real TCP with the crate's own
//! [`dynex_serve::client`]; it deliberately does not link the load harness
//! (which depends on this crate) to keep the dev-dependency graph acyclic.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dynex_experiments::api::SimulationRequest;
use dynex_obs::json::{self, Json};
use dynex_serve::{client, shard_for_key};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A small profile-trace request; `size` distinguishes routing keys.
fn body(size: &str) -> String {
    format!(
        r#"{{"org":"de","size":"{size}","line":4,"trace":{{"source":"profile","profile":"espresso"}},"refs":30000}}"#
    )
}

/// The shard slot the router will place this request body on.
fn owning_shard(body: &str, shards: usize) -> usize {
    let request = SimulationRequest::from_json(body).expect("valid request body");
    shard_for_key(&request.routing_key().expect("routing key"), shards)
}

/// The spawned fleet process, killed on drop so a failing assertion never
/// leaks a router and two workers into the test host.
struct FleetProcess {
    child: Child,
    addr: SocketAddr,
}

impl FleetProcess {
    fn spawn(journal_base: &std::path::Path) -> FleetProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dynex-serve"))
            .args([
                "--shards",
                "2",
                "--warm-journal",
                &journal_base.to_string_lossy(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("dynex-serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("fleet exited before announcing its address")
                .expect("stdout readable");
            if let Some(rest) = line.strip_prefix("dynex-serve listening on ") {
                break rest.trim().parse().expect("announced address parses");
            }
        };
        FleetProcess { child, addr }
    }

    fn shutdown(mut self) {
        client::call(self.addr, "POST", "/shutdown", "", TIMEOUT).expect("drain accepted");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("wait on fleet") {
                Some(status) => {
                    assert!(status.success(), "fleet exited with {status}");
                    // Disarm the Drop kill: the process is already gone.
                    std::mem::forget(self);
                    return;
                }
                None if Instant::now() >= deadline => panic!("fleet did not drain in 20s"),
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

impl Drop for FleetProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Fetches `/healthz` and returns `(pid, respawns, breaker)` per shard id.
fn shard_table(addr: SocketAddr) -> Vec<(u32, u64, String)> {
    let response = client::call(addr, "GET", "/healthz", "", TIMEOUT).expect("healthz");
    let doc = json::parse(&response.body).expect("healthz JSON");
    let rows = doc
        .get("shards")
        .and_then(Json::as_array)
        .expect("healthz shard table");
    let mut table = vec![(0u32, 0u64, String::new()); rows.len()];
    for row in rows {
        let id = row.get("id").and_then(Json::as_u64).expect("shard id") as usize;
        table[id] = (
            row.get("pid").and_then(Json::as_u64).expect("shard pid") as u32,
            row.get("respawns")
                .and_then(Json::as_u64)
                .expect("shard respawns"),
            row.get("breaker")
                .and_then(Json::as_str)
                .expect("shard breaker")
                .to_owned(),
        );
    }
    table
}

#[test]
fn killed_worker_respawns_warm_while_survivors_never_miss_a_beat() {
    let journal_base = std::env::temp_dir().join(format!(
        "dynex-self-heal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    // A stale journal from a previous run would change the warm-boot story.
    for shard in 0..2 {
        let mut path = journal_base.as_os_str().to_owned();
        path.push(format!(".shard-{shard}"));
        let _ = std::fs::remove_file(std::path::PathBuf::from(path));
    }
    let fleet = FleetProcess::spawn(&journal_base);

    // Pick one key per shard from a handful of candidate bodies.
    let mut keys: [Option<String>; 2] = [None, None];
    for size in ["1K", "2K", "4K", "8K", "16K", "32K"] {
        let body = body(size);
        let shard = owning_shard(&body, 2);
        keys[shard].get_or_insert(body);
    }
    let victim_key = keys[0].take().expect("a key landing on shard 0");
    let survivor_key = keys[1].take().expect("a key landing on shard 1");

    // First request computes and journals; the second is the *cached*
    // response — the exact bytes a warm respawn must reproduce.
    let mut cached = Vec::new();
    for key in [&victim_key, &survivor_key] {
        let first = client::call(fleet.addr, "POST", "/simulate", key, TIMEOUT).expect("first");
        assert_eq!(first.status, 200, "{}", first.body);
        let second = client::call(fleet.addr, "POST", "/simulate", key, TIMEOUT).expect("second");
        assert_eq!(second.status, 200, "{}", second.body);
        assert!(
            second.body.contains("\"cached\":true"),
            "second response not cached: {}",
            second.body
        );
        cached.push(second.body);
    }

    let before = shard_table(fleet.addr);
    assert_eq!(before.len(), 2);
    assert_eq!(before[0].1, 0, "no respawns yet: {before:?}");
    let victim_pid = before[0].0;
    assert_ne!(victim_pid, 0, "healthz reports worker pids");

    let status = Command::new("kill")
        .args(["-KILL", &victim_pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -KILL {victim_pid}: {status}");

    // Until the victim's key answers again: the survivor must answer every
    // probe perfectly, and the victim's key may only fail with the
    // router's own "shard 0 unavailable" 503 — never a wrong answer.
    let deadline = Instant::now() + Duration::from_secs(20);
    let recovered = loop {
        let survivor = client::call(fleet.addr, "POST", "/simulate", &survivor_key, TIMEOUT)
            .expect("survivor reachable");
        assert_eq!(
            survivor.status, 200,
            "survivor shard errored during recovery: {}",
            survivor.body
        );
        assert_eq!(
            survivor.body, cached[1],
            "survivor response changed during recovery"
        );

        let victim = client::call(fleet.addr, "POST", "/simulate", &victim_key, TIMEOUT)
            .expect("router reachable");
        match victim.status {
            200 => break victim,
            503 => assert!(
                victim.body.contains("\"shard\":0"),
                "a non-router 503 during recovery: {}",
                victim.body
            ),
            other => panic!("unexpected status {other} during recovery: {}", victim.body),
        }
        assert!(
            Instant::now() < deadline,
            "shard 0 did not recover within 20s"
        );
        std::thread::sleep(Duration::from_millis(100));
    };

    // Warm recovery: the replacement answers from its journal with the
    // exact bytes the dead worker served.
    assert_eq!(
        recovered.body, cached[0],
        "post-respawn response is not byte-identical to the pre-kill cached response"
    );

    let after = shard_table(fleet.addr);
    assert_eq!(after[0].1, 1, "shard 0 respawned once: {after:?}");
    assert_eq!(after[1].1, 0, "survivor never respawned: {after:?}");
    assert_ne!(after[0].0, victim_pid, "replacement has a fresh pid");
    assert_eq!(
        after[0].2, "closed",
        "breaker closed after a relayed success: {after:?}"
    );

    // The merged /metrics carries the fleet-level respawn counters.
    let metrics = client::call(fleet.addr, "GET", "/metrics", "", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    let doc = json::parse(&metrics.body).expect("metrics JSON");
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("shard-respawns"))
            .and_then(Json::as_u64),
        Some(1),
        "shard-respawns counter: {}",
        metrics.body
    );

    fleet.shutdown();
    for shard in 0..2 {
        let mut path = journal_base.as_os_str().to_owned();
        path.push(format!(".shard-{shard}"));
        let _ = std::fs::remove_file(std::path::PathBuf::from(path));
    }
}
