//! Zero-cost observability for the dynex cache simulators.
//!
//! The dynamic-exclusion paper's whole argument is about *why* misses happen
//! — conflict thrashing that the sticky/hit-last FSM learns to exclude.
//! Aggregate hit/miss counts cannot show that; this crate provides the
//! instrumentation layer that can:
//!
//! * [`Probe`] + [`Event`] — a typed event stream ([`Event::Access`],
//!   [`Event::Eviction`], [`Event::StickyFlip`], [`Event::HitLastUpdate`],
//!   [`Event::ExclusionDecision`]) emitted from the simulators' hot paths.
//!   Simulators are generic over the probe with a [`NoopProbe`] default, so
//!   an uninstrumented run monomorphizes every emission away: **zero cost
//!   unless you ask**.
//! * [`MetricsRegistry`] — named `u64` counters and fixed-bucket
//!   [`Histogram`]s (reuse distance, per-set conflict heatmaps).
//! * [`IntervalSeries`] — miss rate per N-access window, for phase-behaviour
//!   plots.
//! * [`span`] — structured tracing: monotonic-clock [`span::SpanGuard`]s
//!   with ids, parents, and stage labels; a lock-sharded
//!   [`span::LatencyRecorder`] (log2 buckets, p50/p90/p99/p999 summaries);
//!   and an optional JSONL span stream. Off by default at the same
//!   zero-cost standard as [`NoopProbe`].
//! * [`export`] — hand-rolled JSONL/JSON/CSV writers (this crate is
//!   dependency-free by design: hermetic builds cannot reach a registry) and
//!   a matching minimal [`json`] parser used by round-trip tests.
//!
//! Ready-made probes: [`CountingProbe`] (per-kind tallies), [`EventLog`]
//! (full ordered log), [`Collector`] (counters + histograms + heatmap +
//! intervals in one sink). Probes compose as tuples: `(a, b)` fans every
//! event out to both.
//!
//! # Quick start
//!
//! ```
//! use dynex_obs::{Cause, Collector, Event, Outcome, Probe};
//!
//! let mut probe = Collector::new(1000);
//! // A simulator emits events like this from its access path:
//! probe.emit(Event::Access { addr: 0x40, set: 0, outcome: Outcome::Miss, cause: Cause::Cold });
//! assert_eq!(probe.registry().counter("misses"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod event;
pub mod export;
mod interval;
pub mod json;
mod probe;
mod registry;
pub mod span;

pub use collector::Collector;
pub use event::{Cause, Event, Outcome};
pub use interval::{IntervalPoint, IntervalSeries};
pub use probe::{CountingProbe, EventCounts, EventLog, NoopProbe, Probe};
pub use registry::{Histogram, HistogramError, MetricsRegistry};
pub use span::{LatencyRecorder, SpanCtx, SpanGuard, TraceLevel};
