//! The [`Probe`] trait and the basic probe implementations.
//!
//! Simulators are generic over a probe (`P: Probe = NoopProbe`); every
//! interesting internal step calls [`Probe::emit`]. With the default
//! [`NoopProbe`] the call monomorphizes to nothing — uninstrumented runs pay
//! zero cost, which the differential tests in `tests/observability.rs`
//! verify behaviourally (byte-identical `CacheStats`).

use std::ops::{Add, AddAssign};

use crate::event::{Event, Outcome};

/// A sink for simulator [`Event`]s.
pub trait Probe {
    /// Receives one event. Implementations must not influence simulation —
    /// probes observe, they never steer.
    fn emit(&mut self, event: Event);
}

/// The zero-cost default probe: drops every event.
///
/// `NoopProbe` is a zero-sized type, so a simulator carrying one is
/// byte-for-byte the same size as an unobservable simulator, and the inlined
/// empty `emit` disappears entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    #[inline(always)]
    fn emit(&mut self, _event: Event) {}
}

/// Forwarding impl so a borrowed probe can be threaded through helpers.
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn emit(&mut self, event: Event) {
        (**self).emit(event);
    }
}

/// Fan-out: a pair of probes both receive every event.
///
/// Tuples compose, so `((a, b), c)` fans out to three sinks.
impl<A: Probe, B: Probe> Probe for (A, B) {
    #[inline]
    fn emit(&mut self, event: Event) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

/// Per-kind event totals collected by a [`CountingProbe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `Event::Access` count.
    pub accesses: u64,
    /// Accesses with [`Outcome::Hit`].
    pub hits: u64,
    /// Accesses with [`Outcome::Miss`].
    pub misses: u64,
    /// `Event::Eviction` count.
    pub evictions: u64,
    /// `Event::StickyFlip` count.
    pub sticky_flips: u64,
    /// `Event::HitLastUpdate` count.
    pub hit_last_updates: u64,
    /// `Event::ExclusionDecision` with `loaded == true`.
    pub exclusion_loads: u64,
    /// `Event::ExclusionDecision` with `loaded == false` (bypasses).
    pub exclusion_bypasses: u64,
    /// `Event::TraceSkip` count (corrupt records skipped by lenient trace
    /// ingestion).
    pub trace_skips: u64,
}

impl EventCounts {
    /// Folds another tally into this one (shard/job merging).
    ///
    /// Exact for counts collected from disjoint partitions of a run: every
    /// field is a plain sum.
    pub fn merge(&mut self, other: &EventCounts) {
        *self += *other;
    }
}

impl Add for EventCounts {
    type Output = EventCounts;

    fn add(self, rhs: EventCounts) -> EventCounts {
        EventCounts {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            sticky_flips: self.sticky_flips + rhs.sticky_flips,
            hit_last_updates: self.hit_last_updates + rhs.hit_last_updates,
            exclusion_loads: self.exclusion_loads + rhs.exclusion_loads,
            exclusion_bypasses: self.exclusion_bypasses + rhs.exclusion_bypasses,
            trace_skips: self.trace_skips + rhs.trace_skips,
        }
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        *self = *self + rhs;
    }
}

/// A probe that tallies events by kind — the cheapest useful probe, used by
/// the differential tests and the experiment runner's per-triple summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    counts: EventCounts,
}

impl CountingProbe {
    /// A fresh, all-zero counter set.
    pub fn new() -> CountingProbe {
        CountingProbe::default()
    }

    /// The totals so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }
}

impl Probe for CountingProbe {
    #[inline]
    fn emit(&mut self, event: Event) {
        match event {
            Event::Access { outcome, .. } => {
                self.counts.accesses += 1;
                match outcome {
                    Outcome::Hit => self.counts.hits += 1,
                    Outcome::Miss => self.counts.misses += 1,
                }
            }
            Event::Eviction { .. } => self.counts.evictions += 1,
            Event::StickyFlip { .. } => self.counts.sticky_flips += 1,
            Event::HitLastUpdate { .. } => self.counts.hit_last_updates += 1,
            Event::ExclusionDecision { loaded, .. } => {
                if loaded {
                    self.counts.exclusion_loads += 1;
                } else {
                    self.counts.exclusion_bypasses += 1;
                }
            }
            Event::TraceSkip { .. } => self.counts.trace_skips += 1,
        }
    }
}

/// A probe that records every event in order (optionally capped).
///
/// Intended for exporting via
/// [`write_events_jsonl`](crate::export::write_events_jsonl) and for fine-
/// grained assertions in tests. For multi-million-reference traces prefer
/// [`CountingProbe`] or [`crate::Collector`] — a full log is O(trace).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    capacity: Option<usize>,
    dropped: u64,
}

impl EventLog {
    /// An unbounded log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A log that keeps only the first `capacity` events and counts the rest
    /// in [`EventLog::dropped`].
    pub fn with_capacity_limit(capacity: usize) -> EventLog {
        EventLog {
            events: Vec::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded because the capacity limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Probe for EventLog {
    #[inline]
    fn emit(&mut self, event: Event) {
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Cause;

    fn access(outcome: Outcome) -> Event {
        Event::Access {
            addr: 0,
            set: 0,
            outcome,
            cause: Cause::Unattributed,
        }
    }

    #[test]
    fn noop_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
    }

    #[test]
    fn counting_probe_tallies_by_kind() {
        let mut p = CountingProbe::new();
        p.emit(access(Outcome::Hit));
        p.emit(access(Outcome::Miss));
        p.emit(Event::Eviction {
            set: 0,
            victim: 1,
            replacement: 2,
        });
        p.emit(Event::StickyFlip {
            set: 0,
            sticky: true,
        });
        p.emit(Event::HitLastUpdate {
            line: 0,
            hit_last: false,
        });
        p.emit(Event::ExclusionDecision {
            set: 0,
            line: 0,
            loaded: true,
        });
        p.emit(Event::ExclusionDecision {
            set: 0,
            line: 0,
            loaded: false,
        });
        p.emit(Event::TraceSkip { offset: 3 });
        let c = p.counts();
        assert_eq!(c.accesses, 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.sticky_flips, 1);
        assert_eq!(c.hit_last_updates, 1);
        assert_eq!(c.exclusion_loads, 1);
        assert_eq!(c.exclusion_bypasses, 1);
        assert_eq!(c.trace_skips, 1);
    }

    #[test]
    fn event_counts_merge_sums_every_field() {
        let mut a = EventCounts {
            accesses: 2,
            hits: 1,
            misses: 1,
            evictions: 1,
            sticky_flips: 0,
            hit_last_updates: 3,
            exclusion_loads: 1,
            exclusion_bypasses: 0,
            trace_skips: 2,
        };
        let b = EventCounts {
            accesses: 5,
            hits: 2,
            misses: 3,
            evictions: 0,
            sticky_flips: 4,
            hit_last_updates: 1,
            exclusion_loads: 2,
            exclusion_bypasses: 6,
            trace_skips: 1,
        };
        let sum = a + b;
        a.merge(&b);
        assert_eq!(a, sum);
        assert_eq!(a.accesses, 7);
        assert_eq!(a.hits, 3);
        assert_eq!(a.misses, 4);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.sticky_flips, 4);
        assert_eq!(a.hit_last_updates, 4);
        assert_eq!(a.exclusion_loads, 3);
        assert_eq!(a.exclusion_bypasses, 6);
        assert_eq!(a.trace_skips, 3);
        // Zero is the identity.
        a += EventCounts::default();
        assert_eq!(a, sum);
    }

    #[test]
    fn merged_probe_counts_equal_single_probe_over_concatenation() {
        // Two probes over disjoint halves of an event stream merge to the
        // same totals as one probe over the whole stream.
        let events = [
            access(Outcome::Miss),
            access(Outcome::Hit),
            Event::ExclusionDecision {
                set: 0,
                line: 0,
                loaded: false,
            },
            access(Outcome::Hit),
            Event::StickyFlip {
                set: 1,
                sticky: true,
            },
        ];
        let mut whole = CountingProbe::new();
        let (mut left, mut right) = (CountingProbe::new(), CountingProbe::new());
        for (i, e) in events.iter().enumerate() {
            whole.emit(*e);
            if i < 2 {
                left.emit(*e);
            } else {
                right.emit(*e);
            }
        }
        let mut merged = left.counts();
        merged.merge(&right.counts());
        assert_eq!(merged, whole.counts());
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let mut log = EventLog::with_capacity_limit(2);
        for _ in 0..5 {
            log.emit(access(Outcome::Hit));
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.into_events().len(), 2);
    }

    #[test]
    fn pair_probe_fans_out() {
        let mut pair = (CountingProbe::new(), EventLog::new());
        pair.emit(access(Outcome::Miss));
        assert_eq!(pair.0.counts().misses, 1);
        assert_eq!(pair.1.events().len(), 1);
    }

    #[test]
    fn borrowed_probe_forwards() {
        let mut p = CountingProbe::new();
        fn through_ref<P: Probe>(mut probe: P, event: Event) {
            probe.emit(event);
        }
        through_ref(&mut p, access(Outcome::Hit));
        assert_eq!(p.counts().hits, 1);
    }
}
