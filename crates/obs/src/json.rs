//! A minimal hand-rolled JSON value, writer-side escaping, and parser.
//!
//! The sandbox the dynex workspace builds in has no registry access, so the
//! exporters cannot lean on serde. Writing JSON is easy enough with string
//! formatting; this module adds the *reading* side — a small recursive-
//! descent parser — so round-trip tests can verify the exporters emit
//! well-formed output without eyeballing strings.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; the dynex exporters only write
    /// integers and fixed-point decimals, both exact well below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted map — key order is not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing content is not.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writers;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came in as &str and
                    // pos only ever advances by whole scalars, so this slice
                    // is always valid UTF-8.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("pos stays on char boundaries");
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse(r#""hi\n""#).unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":true}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":"#).is_err());
        assert!(parse("[1,").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let original = "line1\nline2\t\"quoted\" \\slash";
        let doc = format!(r#"{{"k":"{}"}}"#, escape(original));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}
