//! JSONL / JSON / CSV exporters over [`std::io::Write`].
//!
//! Formats:
//!
//! * **events JSONL** — one JSON object per line, `{"type":…}` tagged; see
//!   [`crate::Event::to_json`] for the per-variant shapes.
//! * **metrics JSON** — a single object
//!   `{"counters":{…},"histograms":{…},"intervals":[…]}` where intervals is
//!   present only when a series is supplied.
//! * **intervals CSV** — `interval,start,accesses,misses,miss_rate` rows
//!   ([`crate::IntervalSeries::to_csv`]).
//! * **heatmap CSV** — `set,evictions` rows
//!   ([`crate::Collector::heatmap_to_csv`]).

use std::io::{self, Write};

use crate::event::Event;
use crate::interval::IntervalSeries;
use crate::registry::MetricsRegistry;

/// Quotes a CSV field if it contains a delimiter, quote, or newline.
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes `events` as JSONL (one event object per line).
pub fn write_events_jsonl<W: Write>(mut w: W, events: &[Event]) -> io::Result<()> {
    for event in events {
        writeln!(w, "{}", event.to_json())?;
    }
    Ok(())
}

/// Serializes a registry (and optionally an interval series) into the
/// metrics JSON document format.
pub fn metrics_json(registry: &MetricsRegistry, intervals: Option<&IntervalSeries>) -> String {
    let base = registry.to_json();
    match intervals {
        None => base,
        Some(series) => {
            let mut out = base;
            debug_assert!(out.ends_with('}'));
            out.pop();
            out.push_str(&format!(
                r#","interval_window":{},"intervals":["#,
                series.window()
            ));
            for (i, p) in series.points().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    r#"{{"index":{},"start":{},"accesses":{},"misses":{}}}"#,
                    p.index, p.start, p.accesses, p.misses
                ));
            }
            out.push_str("]}");
            out
        }
    }
}

/// Writes the metrics JSON document to `w`, newline-terminated.
pub fn write_metrics_json<W: Write>(
    mut w: W,
    registry: &MetricsRegistry,
    intervals: Option<&IntervalSeries>,
) -> io::Result<()> {
    writeln!(w, "{}", metrics_json(registry, intervals))
}

/// Writes an interval series as CSV to `w`.
pub fn write_intervals_csv<W: Write>(mut w: W, intervals: &IntervalSeries) -> io::Result<()> {
    w.write_all(intervals.to_csv().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cause, Outcome};
    use crate::json::{self, Json};

    #[test]
    fn csv_field_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let events = [
            Event::Access {
                addr: 4,
                set: 1,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            },
            Event::Eviction {
                set: 1,
                victim: 9,
                replacement: 4,
            },
        ];
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::parse(line).unwrap();
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").and_then(Json::as_str), Some("access"));
        assert_eq!(first.get("addr").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn metrics_json_with_intervals_parses() {
        let mut registry = MetricsRegistry::new();
        registry.add("accesses", 3);
        let mut series = IntervalSeries::new(2);
        series.record(true);
        series.record(false);
        series.record(true);
        let doc = metrics_json(&registry, Some(&series));
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("accesses"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed.get("interval_window").and_then(Json::as_u64),
            Some(2)
        );
        let intervals = parsed.get("intervals").and_then(Json::as_array).unwrap();
        assert_eq!(intervals.len(), 1, "only completed windows are exported");
        assert_eq!(intervals[0].get("misses").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn metrics_json_without_intervals_is_bare_registry() {
        let registry = MetricsRegistry::new();
        assert_eq!(metrics_json(&registry, None), registry.to_json());
    }

    #[test]
    fn intervals_csv_writer() {
        let mut series = IntervalSeries::new(1);
        series.record(true);
        let mut buf = Vec::new();
        write_intervals_csv(&mut buf, &series).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("interval,start,accesses,misses,miss_rate\n"));
        assert!(text.contains("0,0,1,1,1.000000"));
    }
}
