//! Windowed interval statistics: miss rate per N-access window.
//!
//! Aggregate miss rates hide phase behaviour — a workload that thrashes for
//! its first million references and then settles looks identical to one that
//! misses uniformly. An [`IntervalSeries`] slices the run into fixed-size
//! windows so the phase structure (the thing dynamic exclusion *learns*)
//! becomes visible and plottable.

/// One completed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPoint {
    /// Zero-based window index.
    pub index: u64,
    /// Index of the first access in the window (`index * window`).
    pub start: u64,
    /// Accesses observed in the window (equals the window size except for a
    /// trailing partial window).
    pub accesses: u64,
    /// Misses observed in the window.
    pub misses: u64,
}

impl IntervalPoint {
    /// Window miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Accumulates per-window hit/miss counts as accesses stream by.
///
/// # Examples
///
/// ```
/// use dynex_obs::IntervalSeries;
///
/// let mut s = IntervalSeries::new(2);
/// s.record(true);  // miss
/// s.record(false); // hit — window 0 complete
/// s.record(true);
/// let points = s.finish();
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[0].miss_rate(), 0.5);
/// assert_eq!(points[1].accesses, 1); // trailing partial window
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSeries {
    window: u64,
    points: Vec<IntervalPoint>,
    cur_accesses: u64,
    cur_misses: u64,
    total_accesses: u64,
}

impl IntervalSeries {
    /// Creates a series with `window` accesses per interval.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64) -> IntervalSeries {
        assert!(window > 0, "interval window must be at least 1 access");
        IntervalSeries {
            window,
            points: Vec::new(),
            cur_accesses: 0,
            cur_misses: 0,
            total_accesses: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records one access (`miss == true` for a miss).
    pub fn record(&mut self, miss: bool) {
        self.cur_accesses += 1;
        self.total_accesses += 1;
        if miss {
            self.cur_misses += 1;
        }
        if self.cur_accesses == self.window {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.cur_accesses == 0 {
            return;
        }
        let index = self.points.len() as u64;
        self.points.push(IntervalPoint {
            index,
            start: index * self.window,
            accesses: self.cur_accesses,
            misses: self.cur_misses,
        });
        self.cur_accesses = 0;
        self.cur_misses = 0;
    }

    /// Completed windows so far (excludes the in-progress one).
    pub fn points(&self) -> &[IntervalPoint] {
        &self.points
    }

    /// Total accesses recorded, including the in-progress window.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Flushes any partial trailing window and returns all points.
    pub fn finish(mut self) -> Vec<IntervalPoint> {
        self.flush();
        self.points
    }

    /// Serializes completed windows (plus the partial trailing one) as CSV:
    /// `interval,start,accesses,misses,miss_rate`.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<IntervalPoint> = self.points.clone();
        if self.cur_accesses > 0 {
            let index = rows.len() as u64;
            rows.push(IntervalPoint {
                index,
                start: index * self.window,
                accesses: self.cur_accesses,
                misses: self.cur_misses,
            });
        }
        let mut out = String::from("interval,start,accesses,misses,miss_rate\n");
        for p in rows {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                p.index,
                p.start,
                p.accesses,
                p.misses,
                p.miss_rate()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fill_and_roll() {
        let mut s = IntervalSeries::new(3);
        for i in 0..7 {
            s.record(i % 2 == 0);
        }
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.total_accesses(), 7);
        let p = s.points()[0];
        assert_eq!((p.index, p.start, p.accesses, p.misses), (0, 0, 3, 2));
        let all = s.finish();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].accesses, 1);
    }

    #[test]
    fn exact_multiple_has_no_partial_window() {
        let mut s = IntervalSeries::new(2);
        for _ in 0..4 {
            s.record(false);
        }
        assert_eq!(s.finish().len(), 2);
    }

    #[test]
    fn csv_includes_partial_window() {
        let mut s = IntervalSeries::new(2);
        s.record(true);
        s.record(true);
        s.record(false);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "interval,start,accesses,misses,miss_rate");
        assert_eq!(lines[1], "0,0,2,2,1.000000");
        assert_eq!(lines[2], "1,2,1,0,0.000000");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        IntervalSeries::new(0);
    }
}
