//! Windowed interval statistics: miss rate per N-access window.
//!
//! Aggregate miss rates hide phase behaviour — a workload that thrashes for
//! its first million references and then settles looks identical to one that
//! misses uniformly. An [`IntervalSeries`] slices the run into fixed-size
//! windows so the phase structure (the thing dynamic exclusion *learns*)
//! becomes visible and plottable.

/// One completed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPoint {
    /// Zero-based window index.
    pub index: u64,
    /// Index of the first access in the window (`index * window`).
    pub start: u64,
    /// Accesses observed in the window (equals the window size except for a
    /// trailing partial window).
    pub accesses: u64,
    /// Misses observed in the window.
    pub misses: u64,
}

impl IntervalPoint {
    /// Window miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Accumulates per-window hit/miss counts as accesses stream by.
///
/// # Examples
///
/// ```
/// use dynex_obs::IntervalSeries;
///
/// let mut s = IntervalSeries::new(2);
/// s.record(true);  // miss
/// s.record(false); // hit — window 0 complete
/// s.record(true);
/// let points = s.finish();
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[0].miss_rate(), 0.5);
/// assert_eq!(points[1].accesses, 1); // trailing partial window
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSeries {
    window: u64,
    points: Vec<IntervalPoint>,
    cur_accesses: u64,
    cur_misses: u64,
    total_accesses: u64,
}

impl IntervalSeries {
    /// Creates a series with `window` accesses per interval.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64) -> IntervalSeries {
        assert!(window > 0, "interval window must be at least 1 access");
        IntervalSeries {
            window,
            points: Vec::new(),
            cur_accesses: 0,
            cur_misses: 0,
            total_accesses: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records one access (`miss == true` for a miss).
    pub fn record(&mut self, miss: bool) {
        self.cur_accesses += 1;
        self.total_accesses += 1;
        if miss {
            self.cur_misses += 1;
        }
        if self.cur_accesses == self.window {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.cur_accesses == 0 {
            return;
        }
        let index = self.points.len() as u64;
        self.points.push(IntervalPoint {
            index,
            start: index * self.window,
            accesses: self.cur_accesses,
            misses: self.cur_misses,
        });
        self.cur_accesses = 0;
        self.cur_misses = 0;
    }

    /// Folds another series into this one, treating `other` as the
    /// continuation of this run (shard/job merging).
    ///
    /// Both series must use the same window size. Any partial trailing
    /// window on `self` is flushed first, so window boundaries restart at
    /// the seam — the merged series has the same per-window counts as the
    /// two runs concatenated with a window reset in between. `other`'s
    /// in-progress window (if any) becomes the merged series'
    /// in-progress window.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge(&mut self, other: &IntervalSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot merge interval series with different window sizes"
        );
        self.flush();
        for p in &other.points {
            let index = self.points.len() as u64;
            self.points.push(IntervalPoint {
                index,
                start: index * self.window,
                accesses: p.accesses,
                misses: p.misses,
            });
        }
        self.cur_accesses = other.cur_accesses;
        self.cur_misses = other.cur_misses;
        self.total_accesses += other.total_accesses;
    }

    /// Completed windows so far (excludes the in-progress one).
    pub fn points(&self) -> &[IntervalPoint] {
        &self.points
    }

    /// Total accesses recorded, including the in-progress window.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Flushes any partial trailing window and returns all points.
    pub fn finish(mut self) -> Vec<IntervalPoint> {
        self.flush();
        self.points
    }

    /// Serializes completed windows (plus the partial trailing one) as CSV:
    /// `interval,start,accesses,misses,miss_rate`.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<IntervalPoint> = self.points.clone();
        if self.cur_accesses > 0 {
            let index = rows.len() as u64;
            rows.push(IntervalPoint {
                index,
                start: index * self.window,
                accesses: self.cur_accesses,
                misses: self.cur_misses,
            });
        }
        let mut out = String::from("interval,start,accesses,misses,miss_rate\n");
        for p in rows {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                p.index,
                p.start,
                p.accesses,
                p.misses,
                p.miss_rate()
            ));
        }
        out
    }
}

impl std::ops::AddAssign<&IntervalSeries> for IntervalSeries {
    /// `s += &other` is [`IntervalSeries::merge`].
    fn add_assign(&mut self, rhs: &IntervalSeries) {
        self.merge(rhs);
    }
}

impl std::ops::AddAssign for IntervalSeries {
    fn add_assign(&mut self, rhs: IntervalSeries) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fill_and_roll() {
        let mut s = IntervalSeries::new(3);
        for i in 0..7 {
            s.record(i % 2 == 0);
        }
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.total_accesses(), 7);
        let p = s.points()[0];
        assert_eq!((p.index, p.start, p.accesses, p.misses), (0, 0, 3, 2));
        let all = s.finish();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].accesses, 1);
    }

    #[test]
    fn exact_multiple_has_no_partial_window() {
        let mut s = IntervalSeries::new(2);
        for _ in 0..4 {
            s.record(false);
        }
        assert_eq!(s.finish().len(), 2);
    }

    #[test]
    fn csv_includes_partial_window() {
        let mut s = IntervalSeries::new(2);
        s.record(true);
        s.record(true);
        s.record(false);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "interval,start,accesses,misses,miss_rate");
        assert_eq!(lines[1], "0,0,2,2,1.000000");
        assert_eq!(lines[2], "1,2,1,0,0.000000");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        IntervalSeries::new(0);
    }

    #[test]
    fn merge_concatenates_with_window_reset() {
        // Left: 3 accesses at window 2 => one full window + one partial.
        let mut left = IntervalSeries::new(2);
        left.record(true);
        left.record(false);
        left.record(true);
        // Right: 5 accesses => two full windows + one partial.
        let mut right = IntervalSeries::new(2);
        for miss in [false, false, true, true, false] {
            right.record(miss);
        }
        left.merge(&right);
        assert_eq!(left.total_accesses(), 8);
        // Points: left's full window, left's flushed partial, right's two.
        let pts = left.points();
        assert_eq!(pts.len(), 4);
        assert_eq!((pts[0].accesses, pts[0].misses), (2, 1));
        assert_eq!((pts[1].accesses, pts[1].misses), (1, 1)); // seam flush
        assert_eq!((pts[2].accesses, pts[2].misses), (2, 0));
        assert_eq!((pts[3].accesses, pts[3].misses), (2, 2));
        // Indices and starts were rewritten consecutively.
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i as u64);
            assert_eq!(p.start, i as u64 * 2);
        }
        // Right's partial window carries over as the in-progress window.
        let all = left.finish();
        assert_eq!(all.len(), 5);
        assert_eq!((all[4].accesses, all[4].misses), (1, 0));
    }

    #[test]
    fn merge_into_empty_is_a_copy() {
        let mut right = IntervalSeries::new(4);
        for i in 0..9 {
            right.record(i % 3 == 0);
        }
        let mut empty = IntervalSeries::new(4);
        empty.merge(&right);
        assert_eq!(empty, right);
        // AddAssign forms agree.
        let mut a = IntervalSeries::new(4);
        a += &right;
        assert_eq!(a, right);
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_windows() {
        IntervalSeries::new(2).merge(&IntervalSeries::new(3));
    }
}
