//! Named counters and fixed-bucket histograms.

use std::collections::BTreeMap;

/// A histogram over fixed, caller-chosen bucket upper bounds.
///
/// A value `v` lands in the first bucket whose inclusive upper bound is
/// `>= v`; values above the last bound land in an implicit overflow bucket,
/// so `counts()` has `bounds().len() + 1` entries.
///
/// # Examples
///
/// ```
/// use dynex_obs::Histogram;
///
/// let mut h = Histogram::new(vec![1, 4, 16]);
/// h.record(1);
/// h.record(3);
/// h.record(100); // overflow
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts }
    }

    /// Power-of-two bounds `1, 2, 4, … , 2^max_exp` — the shape used for
    /// reuse-distance histograms.
    pub fn pow2(max_exp: u32) -> Histogram {
        Histogram::new((0..=max_exp).map(|e| 1u64 << e).collect())
    }

    /// Builds a histogram from precomputed bucket counts.
    ///
    /// # Panics
    ///
    /// Panics on the same bound conditions as [`Histogram::new`] or if
    /// `counts.len() != bounds.len() + 1`.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Histogram {
        let mut h = Histogram::new(bounds);
        assert_eq!(counts.len(), h.counts.len(), "need bounds.len() + 1 counts");
        h.counts = counts;
        h
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Serializes as a JSON object `{"bounds":[…],"counts":[…]}`.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bounds":[{}],"counts":[{}]}}"#,
            join_u64(&self.bounds),
            join_u64(&self.counts)
        )
    }
}

fn join_u64(values: &[u64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

/// A registry of named `u64` counters and [`Histogram`]s.
///
/// Names are free-form; the dynex probes use `kebab-case` (`"accesses"`,
/// `"exclusion-bypasses"`, `"reuse-distance"`). `BTreeMap` keeps exports
/// deterministically ordered.
///
/// # Examples
///
/// ```
/// use dynex_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("accesses", 2);
/// m.add("misses", 1);
/// assert_eq!(m.counter("accesses"), 2);
/// assert!(m.to_json().contains(r#""misses":1"#));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Inserts (or replaces) a histogram under `name`.
    pub fn put_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the registry as one JSON object:
    /// `{"counters":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from(r#"{"counters":{"#);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{}"#, crate::json::escape(name), value));
        }
        out.push_str(r#"},"histograms":{"#);
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#""{}":{}"#,
                crate::json::escape(name),
                h.to_json()
            ));
        }
        out.push_str("}}");
        out
    }

    /// Serializes the counters as two-column CSV (`name,value`).
    pub fn counters_to_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("{},{}\n", crate::export::csv_field(name), value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(vec![2, 8]);
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 2, 2]); // <=2, <=8, overflow
        assert_eq!(h.total(), 7);
        assert_eq!(h.to_json(), r#"{"bounds":[2,8],"counts":[3,2,2]}"#);
    }

    #[test]
    fn pow2_bounds() {
        let h = Histogram::pow2(3);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bounds_rejected() {
        Histogram::new(Vec::new());
    }

    #[test]
    fn registry_counters() {
        let mut m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.counters().count(), 2);
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.add("z", 1);
        m.add("a", 2);
        m.put_histogram("h", Histogram::new(vec![1]));
        assert_eq!(
            m.to_json(),
            r#"{"counters":{"a":2,"z":1},"histograms":{"h":{"bounds":[1],"counts":[0,0]}}}"#
        );
    }

    #[test]
    fn counters_csv() {
        let mut m = MetricsRegistry::new();
        m.add("accesses", 4);
        assert_eq!(m.counters_to_csv(), "counter,value\naccesses,4\n");
    }
}
