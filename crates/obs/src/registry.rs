//! Named counters and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::ops::AddAssign;

/// A histogram over fixed, caller-chosen bucket upper bounds.
///
/// A value `v` lands in the first bucket whose inclusive upper bound is
/// `>= v`; values above the last bound land in an implicit overflow bucket,
/// so `counts()` has `bounds().len() + 1` entries.
///
/// # Examples
///
/// ```
/// use dynex_obs::Histogram;
///
/// let mut h = Histogram::new(vec![1, 4, 16]);
/// h.record(1);
/// h.record(3);
/// h.record(100); // overflow
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts }
    }

    /// Power-of-two bounds `1, 2, 4, … , 2^max_exp` — the shape used for
    /// reuse-distance histograms.
    pub fn pow2(max_exp: u32) -> Histogram {
        Histogram::new((0..=max_exp).map(|e| 1u64 << e).collect())
    }

    /// Builds a histogram from precomputed bucket counts.
    ///
    /// # Panics
    ///
    /// Panics on the same bound conditions as [`Histogram::new`] or if
    /// `counts.len() != bounds.len() + 1`.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Histogram {
        let mut h = Histogram::new(bounds);
        assert_eq!(counts.len(), h.counts.len(), "need bounds.len() + 1 counts");
        h.counts = counts;
        h
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds another histogram's buckets into this one (shard/job merging).
    ///
    /// Exact when the two histograms were recorded over disjoint partitions
    /// of a run: bucket counts are plain sums.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms over
    /// different bucketings has no well-defined result.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// Serializes as a JSON object `{"bounds":[…],"counts":[…]}`.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bounds":[{}],"counts":[{}]}}"#,
            join_u64(&self.bounds),
            join_u64(&self.counts)
        )
    }
}

impl AddAssign<&Histogram> for Histogram {
    /// `h += &other` is [`Histogram::merge`].
    fn add_assign(&mut self, rhs: &Histogram) {
        self.merge(rhs);
    }
}

impl AddAssign for Histogram {
    fn add_assign(&mut self, rhs: Histogram) {
        self.merge(&rhs);
    }
}

fn join_u64(values: &[u64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

/// A registry of named `u64` counters and [`Histogram`]s.
///
/// Names are free-form; the dynex probes use `kebab-case` (`"accesses"`,
/// `"exclusion-bypasses"`, `"reuse-distance"`). `BTreeMap` keeps exports
/// deterministically ordered.
///
/// # Examples
///
/// ```
/// use dynex_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("accesses", 2);
/// m.add("misses", 1);
/// assert_eq!(m.counter("accesses"), 2);
/// assert!(m.to_json().contains(r#""misses":1"#));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Inserts (or replaces) a histogram under `name`.
    pub fn put_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one (shard/job merging): counters
    /// are summed; histograms present in both are bucket-merged, histograms
    /// only in `other` are cloned in.
    ///
    /// # Panics
    ///
    /// Panics if a histogram present in both registries has different bucket
    /// bounds (see [`Histogram::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            self.add(name, value);
        }
        for (name, histogram) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(existing) => existing.merge(histogram),
                None => {
                    self.histograms.insert(name.clone(), histogram.clone());
                }
            }
        }
    }

    /// Serializes the registry as one JSON object:
    /// `{"counters":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from(r#"{"counters":{"#);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{}"#, crate::json::escape(name), value));
        }
        out.push_str(r#"},"histograms":{"#);
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#""{}":{}"#,
                crate::json::escape(name),
                h.to_json()
            ));
        }
        out.push_str("}}");
        out
    }

    /// Serializes the counters as two-column CSV (`name,value`).
    pub fn counters_to_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("{},{}\n", crate::export::csv_field(name), value));
        }
        out
    }
}

impl AddAssign<&MetricsRegistry> for MetricsRegistry {
    /// `m += &other` is [`MetricsRegistry::merge`].
    fn add_assign(&mut self, rhs: &MetricsRegistry) {
        self.merge(rhs);
    }
}

impl AddAssign for MetricsRegistry {
    fn add_assign(&mut self, rhs: MetricsRegistry) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(vec![2, 8]);
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 2, 2]); // <=2, <=8, overflow
        assert_eq!(h.total(), 7);
        assert_eq!(h.to_json(), r#"{"bounds":[2,8],"counts":[3,2,2]}"#);
    }

    #[test]
    fn pow2_bounds() {
        let h = Histogram::pow2(3);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bounds_rejected() {
        Histogram::new(Vec::new());
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        // Merging two histograms over disjoint value sets equals one
        // histogram over the union.
        let mut whole = Histogram::new(vec![2, 8]);
        let mut left = Histogram::new(vec![2, 8]);
        let mut right = Histogram::new(vec![2, 8]);
        for v in [1u64, 2, 5] {
            whole.record(v);
            left.record(v);
        }
        for v in [3u64, 9, 100] {
            whole.record(v);
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.counts(), &[2, 2, 2]);
        // AddAssign forms agree.
        let mut a = Histogram::new(vec![2, 8]);
        a.record(1);
        let mut b = a.clone();
        a += &right;
        b += right.clone();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1, 2]);
        a.merge(&Histogram::new(vec![1, 4]));
    }

    #[test]
    fn registry_merge_sums_counters_and_unions_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("accesses", 3);
        a.add("misses", 1);
        let mut h = Histogram::new(vec![4]);
        h.record(2);
        a.put_histogram("reuse-distance", h);

        let mut b = MetricsRegistry::new();
        b.add("accesses", 5);
        b.add("evictions", 2);
        let mut h2 = Histogram::new(vec![4]);
        h2.record(9);
        b.put_histogram("reuse-distance", h2);
        b.put_histogram("only-in-b", Histogram::new(vec![1]));

        a.merge(&b);
        assert_eq!(a.counter("accesses"), 8);
        assert_eq!(a.counter("misses"), 1);
        assert_eq!(a.counter("evictions"), 2);
        let merged = a.histogram("reuse-distance").unwrap();
        assert_eq!(merged.counts(), &[1, 1]);
        assert!(a.histogram("only-in-b").is_some());
        // AddAssign form agrees with a fresh merge.
        let mut c = MetricsRegistry::new();
        c.add("accesses", 3);
        c += &b;
        assert_eq!(c.counter("accesses"), 8);
    }

    #[test]
    fn registry_counters() {
        let mut m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.counters().count(), 2);
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.add("z", 1);
        m.add("a", 2);
        m.put_histogram("h", Histogram::new(vec![1]));
        assert_eq!(
            m.to_json(),
            r#"{"counters":{"a":2,"z":1},"histograms":{"h":{"bounds":[1],"counts":[0,0]}}}"#
        );
    }

    #[test]
    fn counters_csv() {
        let mut m = MetricsRegistry::new();
        m.add("accesses", 4);
        assert_eq!(m.counters_to_csv(), "counter,value\naccesses,4\n");
    }
}
