//! Named counters and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::AddAssign;
use std::sync::OnceLock;

/// Shared empty map so [`MetricsRegistry::from_json`] can treat an absent
/// section as an empty one without allocating per call.
static EMPTY_OBJECT: OnceLock<BTreeMap<String, crate::json::Json>> = OnceLock::new();

/// Why a histogram could not be built — returned by the fallible
/// constructors so callers on untrusted-input paths (JSON import) can turn
/// a bad bucketing into a structured error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// No bucket bounds were supplied.
    EmptyBounds,
    /// `bounds[index - 1] >= bounds[index]`: unsorted or duplicate bounds.
    NotStrictlyIncreasing {
        /// Index of the offending bound.
        index: usize,
        /// The preceding bound.
        prev: u64,
        /// The bound that failed to exceed it.
        next: u64,
    },
    /// `counts.len() != bounds.len() + 1` in [`Histogram::try_from_parts`].
    CountsLength {
        /// `bounds.len() + 1`.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// A JSON document handed to [`Histogram::from_json`] did not have the
    /// `{"bounds":[…],"counts":[…]}` shape.
    Malformed(String),
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::EmptyBounds => {
                write!(f, "histogram needs at least one bucket bound")
            }
            HistogramError::NotStrictlyIncreasing { index, prev, next } => write!(
                f,
                "bounds must be strictly increasing \
                 (bounds[{}]={prev} >= bounds[{index}]={next})",
                index - 1
            ),
            HistogramError::CountsLength { expected, got } => write!(
                f,
                "need bounds.len() + 1 counts (expected {expected}, got {got})"
            ),
            HistogramError::Malformed(what) => write!(f, "malformed histogram JSON: {what}"),
        }
    }
}

impl std::error::Error for HistogramError {}

/// A histogram over fixed, caller-chosen bucket upper bounds.
///
/// A value `v` lands in the first bucket whose inclusive upper bound is
/// `>= v`; values above the last bound land in an implicit overflow bucket,
/// so `counts()` has `bounds().len() + 1` entries.
///
/// # Examples
///
/// ```
/// use dynex_obs::Histogram;
///
/// let mut h = Histogram::new(vec![1, 4, 16]);
/// h.record(1);
/// h.record(3);
/// h.record(100); // overflow
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        match Histogram::try_new(bounds) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Histogram::new`]: validates the bounds and names exactly
    /// what is wrong instead of panicking — the constructor for bounds that
    /// arrive from outside the process (JSON import, config files).
    pub fn try_new(bounds: Vec<u64>) -> Result<Histogram, HistogramError> {
        if bounds.is_empty() {
            return Err(HistogramError::EmptyBounds);
        }
        if let Some(index) = (1..bounds.len()).find(|&i| bounds[i - 1] >= bounds[i]) {
            return Err(HistogramError::NotStrictlyIncreasing {
                index,
                prev: bounds[index - 1],
                next: bounds[index],
            });
        }
        let counts = vec![0; bounds.len() + 1];
        Ok(Histogram { bounds, counts })
    }

    /// Power-of-two bounds `1, 2, 4, … , 2^max_exp` — the shape used for
    /// reuse-distance histograms.
    pub fn pow2(max_exp: u32) -> Histogram {
        Histogram::new((0..=max_exp).map(|e| 1u64 << e).collect())
    }

    /// Builds a histogram from precomputed bucket counts.
    ///
    /// # Panics
    ///
    /// Panics on the same bound conditions as [`Histogram::new`] or if
    /// `counts.len() != bounds.len() + 1`.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Histogram {
        match Histogram::try_from_parts(bounds, counts) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Histogram::from_parts`] (see [`Histogram::try_new`]).
    pub fn try_from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Result<Histogram, HistogramError> {
        let mut h = Histogram::try_new(bounds)?;
        if counts.len() != h.counts.len() {
            return Err(HistogramError::CountsLength {
                expected: h.counts.len(),
                got: counts.len(),
            });
        }
        h.counts = counts;
        Ok(h)
    }

    /// Rebuilds a histogram from its [`Histogram::to_json`] form (a parsed
    /// `{"bounds":[…],"counts":[…]}` object), validating shape and bounds.
    pub fn from_json(value: &crate::json::Json) -> Result<Histogram, HistogramError> {
        let array_of_u64 = |key: &str| -> Result<Vec<u64>, HistogramError> {
            let array = value
                .get(key)
                .and_then(crate::json::Json::as_array)
                .ok_or_else(|| HistogramError::Malformed(format!("{key:?} must be an array")))?;
            array
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        HistogramError::Malformed(format!(
                            "{key:?} entries must be non-negative integers"
                        ))
                    })
                })
                .collect()
        };
        Histogram::try_from_parts(array_of_u64("bounds")?, array_of_u64("counts")?)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of the
    /// bucket holding the `ceil(q * total)`-th smallest sample.
    ///
    /// Returns `None` for an empty histogram, and `u64::MAX` when the
    /// quantile falls in the overflow bucket (the sample exceeded every
    /// bound, so only "bigger than the last bound" is known). The result is
    /// an upper bound on the true quantile — exact to the bucket
    /// resolution, which for the log2 presets means within 2x.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        // counts sum to total and rank <= total, so the loop always returns.
        unreachable!("quantile rank exceeds recorded total")
    }

    /// Folds another histogram's buckets into this one (shard/job merging).
    ///
    /// Exact when the two histograms were recorded over disjoint partitions
    /// of a run: bucket counts are plain sums.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms over
    /// different bucketings has no well-defined result.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// Serializes as a JSON object `{"bounds":[…],"counts":[…]}`.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bounds":[{}],"counts":[{}]}}"#,
            join_u64(&self.bounds),
            join_u64(&self.counts)
        )
    }
}

impl AddAssign<&Histogram> for Histogram {
    /// `h += &other` is [`Histogram::merge`].
    fn add_assign(&mut self, rhs: &Histogram) {
        self.merge(rhs);
    }
}

impl AddAssign for Histogram {
    fn add_assign(&mut self, rhs: Histogram) {
        self.merge(&rhs);
    }
}

fn join_u64(values: &[u64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

/// A registry of named `u64` counters and [`Histogram`]s.
///
/// Names are free-form; the dynex probes use `kebab-case` (`"accesses"`,
/// `"exclusion-bypasses"`, `"reuse-distance"`). `BTreeMap` keeps exports
/// deterministically ordered.
///
/// # Examples
///
/// ```
/// use dynex_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("accesses", 2);
/// m.add("misses", 1);
/// assert_eq!(m.counter("accesses"), 2);
/// assert!(m.to_json().contains(r#""misses":1"#));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Inserts (or replaces) a histogram under `name`.
    pub fn put_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one (shard/job merging): counters
    /// are summed; histograms present in both are bucket-merged, histograms
    /// only in `other` are cloned in.
    ///
    /// # Panics
    ///
    /// Panics if a histogram present in both registries has different bucket
    /// bounds (see [`Histogram::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            self.add(name, value);
        }
        for (name, histogram) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(existing) => existing.merge(histogram),
                None => {
                    self.histograms.insert(name.clone(), histogram.clone());
                }
            }
        }
    }

    /// Rebuilds a registry from its [`MetricsRegistry::to_json`] form (a
    /// parsed `{"counters":{…},"histograms":{…}}` object).
    ///
    /// The inverse of the `/metrics` wire format, used by the dynex-serve
    /// router to merge per-shard registries and by dynex-load to cross-check
    /// client percentiles against the server. Extra top-level keys (such as
    /// the server's `latency_summary` splice) are ignored; malformed
    /// counters or histograms are structured errors, not panics.
    pub fn from_json(value: &crate::json::Json) -> Result<MetricsRegistry, HistogramError> {
        let mut registry = MetricsRegistry::new();
        let object = |key: &str| -> Result<&BTreeMap<String, crate::json::Json>, HistogramError> {
            match value.get(key) {
                Some(crate::json::Json::Obj(map)) => Ok(map),
                Some(_) => Err(HistogramError::Malformed(format!(
                    "{key:?} must be an object"
                ))),
                // Absent sections are fine: an empty registry serializes
                // them as {}, and foreign producers may omit one entirely.
                None => Ok(EMPTY_OBJECT.get_or_init(BTreeMap::new)),
            }
        };
        for (name, counter) in object("counters")? {
            let v = counter.as_u64().ok_or_else(|| {
                HistogramError::Malformed(format!(
                    "counter {name:?} must be a non-negative integer"
                ))
            })?;
            registry.set(name, v);
        }
        for (name, histogram) in object("histograms")? {
            registry.put_histogram(name, Histogram::from_json(histogram)?);
        }
        Ok(registry)
    }

    /// Serializes the registry as one JSON object:
    /// `{"counters":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from(r#"{"counters":{"#);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{}"#, crate::json::escape(name), value));
        }
        out.push_str(r#"},"histograms":{"#);
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#""{}":{}"#,
                crate::json::escape(name),
                h.to_json()
            ));
        }
        out.push_str("}}");
        out
    }

    /// Serializes the counters as two-column CSV (`name,value`).
    pub fn counters_to_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("{},{}\n", crate::export::csv_field(name), value));
        }
        out
    }
}

impl AddAssign<&MetricsRegistry> for MetricsRegistry {
    /// `m += &other` is [`MetricsRegistry::merge`].
    fn add_assign(&mut self, rhs: &MetricsRegistry) {
        self.merge(rhs);
    }
}

impl AddAssign for MetricsRegistry {
    fn add_assign(&mut self, rhs: MetricsRegistry) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(vec![2, 8]);
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 2, 2]); // <=2, <=8, overflow
        assert_eq!(h.total(), 7);
        assert_eq!(h.to_json(), r#"{"bounds":[2,8],"counts":[3,2,2]}"#);
    }

    #[test]
    fn pow2_bounds() {
        let h = Histogram::pow2(3);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bounds_rejected() {
        Histogram::new(Vec::new());
    }

    #[test]
    fn try_new_reports_structured_errors() {
        assert_eq!(
            Histogram::try_new(Vec::new()),
            Err(HistogramError::EmptyBounds)
        );
        // Unsorted and duplicate bounds name the offending pair.
        assert_eq!(
            Histogram::try_new(vec![1, 4, 2]),
            Err(HistogramError::NotStrictlyIncreasing {
                index: 2,
                prev: 4,
                next: 2
            })
        );
        assert_eq!(
            Histogram::try_new(vec![3, 3]),
            Err(HistogramError::NotStrictlyIncreasing {
                index: 1,
                prev: 3,
                next: 3
            })
        );
        assert_eq!(
            Histogram::try_from_parts(vec![1, 2], vec![0, 0]),
            Err(HistogramError::CountsLength {
                expected: 3,
                got: 2
            })
        );
        let message = Histogram::try_new(vec![4, 2]).unwrap_err().to_string();
        assert!(message.contains("strictly increasing"), "{message}");
        assert!(message.contains("bounds[0]=4"), "{message}");
    }

    #[test]
    fn histogram_json_round_trip_validates_on_import() {
        let mut h = Histogram::new(vec![2, 8]);
        for v in [1, 5, 100] {
            h.record(v);
        }
        let parsed = crate::json::parse(&h.to_json()).unwrap();
        assert_eq!(Histogram::from_json(&parsed).unwrap(), h);

        // Structured errors, not panics, on bad wire data.
        let bad_bounds = crate::json::parse(r#"{"bounds":[8,2],"counts":[0,0,0]}"#).unwrap();
        assert!(matches!(
            Histogram::from_json(&bad_bounds),
            Err(HistogramError::NotStrictlyIncreasing { .. })
        ));
        let bad_shape = crate::json::parse(r#"{"bounds":[1]}"#).unwrap();
        assert!(matches!(
            Histogram::from_json(&bad_shape),
            Err(HistogramError::Malformed(_))
        ));
        let bad_counts = crate::json::parse(r#"{"bounds":[1],"counts":[0]}"#).unwrap();
        assert!(matches!(
            Histogram::from_json(&bad_counts),
            Err(HistogramError::CountsLength { .. })
        ));
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = Histogram::new(vec![1, 2, 4]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.999), None);
    }

    #[test]
    fn quantile_single_bucket() {
        // Every sample in one bucket: every quantile is that bucket's bound.
        let mut h = Histogram::new(vec![10]);
        for v in [1, 2, 3] {
            h.record(v);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10), "q={q}");
        }
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [1u64, 1, 2, 2, 2, 4, 4, 4, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1)); // rank clamps to the 1st sample
        assert_eq!(h.quantile(0.2), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.9), Some(4));
        assert_eq!(h.quantile(1.0), Some(8));
    }

    #[test]
    fn quantile_overflow_bucket_is_u64_max() {
        // A u64::MAX sample exceeds every bound; quantiles landing on it can
        // only honestly report "bigger than the last bound".
        let mut h = Histogram::pow2(4);
        h.record(3);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        // All-overflow histogram: every quantile is the overflow marker.
        let mut all_over = Histogram::new(vec![1]);
        all_over.record(u64::MAX);
        assert_eq!(all_over.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        // Merging two histograms over disjoint value sets equals one
        // histogram over the union.
        let mut whole = Histogram::new(vec![2, 8]);
        let mut left = Histogram::new(vec![2, 8]);
        let mut right = Histogram::new(vec![2, 8]);
        for v in [1u64, 2, 5] {
            whole.record(v);
            left.record(v);
        }
        for v in [3u64, 9, 100] {
            whole.record(v);
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.counts(), &[2, 2, 2]);
        // AddAssign forms agree.
        let mut a = Histogram::new(vec![2, 8]);
        a.record(1);
        let mut b = a.clone();
        a += &right;
        b += right.clone();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1, 2]);
        a.merge(&Histogram::new(vec![1, 4]));
    }

    #[test]
    fn registry_merge_sums_counters_and_unions_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("accesses", 3);
        a.add("misses", 1);
        let mut h = Histogram::new(vec![4]);
        h.record(2);
        a.put_histogram("reuse-distance", h);

        let mut b = MetricsRegistry::new();
        b.add("accesses", 5);
        b.add("evictions", 2);
        let mut h2 = Histogram::new(vec![4]);
        h2.record(9);
        b.put_histogram("reuse-distance", h2);
        b.put_histogram("only-in-b", Histogram::new(vec![1]));

        a.merge(&b);
        assert_eq!(a.counter("accesses"), 8);
        assert_eq!(a.counter("misses"), 1);
        assert_eq!(a.counter("evictions"), 2);
        let merged = a.histogram("reuse-distance").unwrap();
        assert_eq!(merged.counts(), &[1, 1]);
        assert!(a.histogram("only-in-b").is_some());
        // AddAssign form agrees with a fresh merge.
        let mut c = MetricsRegistry::new();
        c.add("accesses", 3);
        c += &b;
        assert_eq!(c.counter("accesses"), 8);
    }

    #[test]
    fn registry_json_round_trip() {
        let mut m = MetricsRegistry::new();
        m.add("requests-total", 7);
        m.add("cache-hits", 3);
        let mut h = Histogram::pow2(4);
        h.record(3);
        h.record(1000);
        m.put_histogram("latency-us/simulate", h);

        let parsed = crate::json::parse(&m.to_json()).unwrap();
        let back = MetricsRegistry::from_json(&parsed).unwrap();
        assert_eq!(back, m);
        // Round-tripped registries merge like the originals.
        let mut merged = back.clone();
        merged.merge(&m);
        assert_eq!(merged.counter("requests-total"), 14);
        assert_eq!(merged.histogram("latency-us/simulate").unwrap().total(), 4);
    }

    #[test]
    fn registry_from_json_ignores_extra_keys_and_tolerates_absent_sections() {
        // The serve /metrics body splices latency_summary after histograms;
        // the parser must skip keys it does not own.
        let doc = crate::json::parse(
            r#"{"counters":{"a":1},"histograms":{},"latency_summary":{"simulate":{"count":1}}}"#,
        )
        .unwrap();
        let m = MetricsRegistry::from_json(&doc).unwrap();
        assert_eq!(m.counter("a"), 1);
        assert_eq!(m.histograms().count(), 0);
        // Entirely absent sections parse as empty.
        let empty = crate::json::parse("{}").unwrap();
        assert_eq!(
            MetricsRegistry::from_json(&empty).unwrap(),
            MetricsRegistry::new()
        );
    }

    #[test]
    fn registry_from_json_rejects_malformed_documents() {
        for (doc, what) in [
            (r#"{"counters":[]}"#, "object"),
            (r#"{"counters":{"a":-1}}"#, "non-negative"),
            (r#"{"counters":{"a":1.5}}"#, "non-negative"),
            (
                r#"{"histograms":{"h":{"bounds":[2,1],"counts":[0,0,0]}}}"#,
                "",
            ),
        ] {
            let parsed = crate::json::parse(doc).unwrap();
            let err = MetricsRegistry::from_json(&parsed).unwrap_err();
            assert!(err.to_string().contains(what), "{doc} -> {err}");
        }
    }

    #[test]
    fn registry_counters() {
        let mut m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.counters().count(), 2);
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.add("z", 1);
        m.add("a", 2);
        m.put_histogram("h", Histogram::new(vec![1]));
        assert_eq!(
            m.to_json(),
            r#"{"counters":{"a":2,"z":1},"histograms":{"h":{"bounds":[1],"counts":[0,0]}}}"#
        );
    }

    #[test]
    fn counters_csv() {
        let mut m = MetricsRegistry::new();
        m.add("accesses", 4);
        assert_eq!(m.counters_to_csv(), "counter,value\naccesses,4\n");
    }
}
