//! Typed simulator events.
//!
//! Every observable thing a dynex simulator does is described by one
//! [`Event`] value. Events are small `Copy` structs so that emitting one
//! through a [`crate::Probe`] costs a handful of register moves — and
//! nothing at all once the [`crate::NoopProbe`] monomorphizes the emission
//! away.

use std::fmt;

/// Did the reference hit or miss?
///
/// Mirrors `dynex_cache::AccessOutcome` without depending on it: `dynex-obs`
/// sits *below* the simulator crates in the dependency graph so they can all
/// emit events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The reference was served without a memory fetch.
    Hit,
    /// The reference required a memory fetch.
    Miss,
}

impl Outcome {
    /// `true` for [`Outcome::Miss`].
    pub fn is_miss(self) -> bool {
        matches!(self, Outcome::Miss)
    }

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
        }
    }
}

/// Why an access resolved the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Hit in the primary array.
    Resident,
    /// Hit rescued by a victim buffer.
    VictimBuffer,
    /// Hit served by a stream buffer.
    StreamBuffer,
    /// Hit served by a last-line buffer.
    LineBuffer,
    /// Miss that filled a previously invalid line.
    Cold,
    /// Miss that displaced a valid line (the conflict/capacity case).
    Replace,
    /// Miss passed to the CPU without storing (dynamic exclusion).
    Bypass,
    /// Emitted by wrappers (e.g. `Instrumented`) that cannot see inside the
    /// simulator they observe.
    Unattributed,
}

impl Cause {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Cause::Resident => "resident",
            Cause::VictimBuffer => "victim-buffer",
            Cause::StreamBuffer => "stream-buffer",
            Cause::LineBuffer => "line-buffer",
            Cause::Cold => "cold",
            Cause::Replace => "replace",
            Cause::Bypass => "bypass",
            Cause::Unattributed => "unattributed",
        }
    }
}

/// One observable simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// One reference was presented to a simulator.
    Access {
        /// The byte address referenced.
        addr: u32,
        /// The cache set the address maps to.
        set: u32,
        /// Hit or miss.
        outcome: Outcome,
        /// Why it resolved that way.
        cause: Cause,
    },
    /// A valid line was displaced from the primary array.
    Eviction {
        /// The set the eviction happened in.
        set: u32,
        /// Line address of the displaced block.
        victim: u32,
        /// Line address of the block taking its place.
        replacement: u32,
    },
    /// A line's sticky bit changed value (dynamic exclusion FSM).
    StickyFlip {
        /// The set whose sticky state changed.
        set: u32,
        /// The new sticky value.
        sticky: bool,
    },
    /// A block's hit-last bit was written.
    HitLastUpdate {
        /// Line address of the block whose bit changed.
        line: u32,
        /// The new hit-last value.
        hit_last: bool,
    },
    /// The FSM arbitrated a miss on a sticky line: load or bypass.
    ExclusionDecision {
        /// The set the decision was made in.
        set: u32,
        /// Line address of the referenced (challenger) block.
        line: u32,
        /// `true` if the block was loaded, `false` if it was bypassed.
        loaded: bool,
    },
    /// A corrupt record was skipped during lenient trace ingestion
    /// (`dynex_trace::io::ReadPolicy::Lenient`).
    TraceSkip {
        /// Reference index (binary format) or 1-based line number (text
        /// format) of the skipped record.
        offset: u64,
    },
}

impl Event {
    /// Stable lowercase kind tag used by the exporters (`"access"`,
    /// `"eviction"`, `"sticky-flip"`, `"hit-last"`, `"exclusion"`,
    /// `"trace-skip"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Access { .. } => "access",
            Event::Eviction { .. } => "eviction",
            Event::StickyFlip { .. } => "sticky-flip",
            Event::HitLastUpdate { .. } => "hit-last",
            Event::ExclusionDecision { .. } => "exclusion",
            Event::TraceSkip { .. } => "trace-skip",
        }
    }

    /// Serializes the event as a single-line JSON object (the JSONL record
    /// format of [`crate::export::write_events_jsonl`]).
    pub fn to_json(&self) -> String {
        match *self {
            Event::Access {
                addr,
                set,
                outcome,
                cause,
            } => format!(
                r#"{{"type":"access","addr":{addr},"set":{set},"outcome":"{}","cause":"{}"}}"#,
                outcome.name(),
                cause.name()
            ),
            Event::Eviction {
                set,
                victim,
                replacement,
            } => format!(
                r#"{{"type":"eviction","set":{set},"victim":{victim},"replacement":{replacement}}}"#
            ),
            Event::StickyFlip { set, sticky } => {
                format!(r#"{{"type":"sticky-flip","set":{set},"sticky":{sticky}}}"#)
            }
            Event::HitLastUpdate { line, hit_last } => {
                format!(r#"{{"type":"hit-last","line":{line},"hit_last":{hit_last}}}"#)
            }
            Event::ExclusionDecision { set, line, loaded } => {
                format!(r#"{{"type":"exclusion","set":{set},"line":{line},"loaded":{loaded}}}"#)
            }
            Event::TraceSkip { offset } => {
                format!(r#"{{"type":"trace-skip","offset":{offset}}}"#)
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates_and_names() {
        assert!(Outcome::Miss.is_miss());
        assert!(!Outcome::Hit.is_miss());
        assert_eq!(Outcome::Hit.name(), "hit");
        assert_eq!(Cause::Bypass.name(), "bypass");
    }

    #[test]
    fn json_shapes() {
        let e = Event::Access {
            addr: 64,
            set: 0,
            outcome: Outcome::Miss,
            cause: Cause::Cold,
        };
        assert_eq!(
            e.to_json(),
            r#"{"type":"access","addr":64,"set":0,"outcome":"miss","cause":"cold"}"#
        );
        let e = Event::StickyFlip {
            set: 3,
            sticky: false,
        };
        assert_eq!(
            e.to_json(),
            r#"{"type":"sticky-flip","set":3,"sticky":false}"#
        );
        assert_eq!(e.kind(), "sticky-flip");
        assert_eq!(e.to_string(), e.to_json());
        let e = Event::TraceSkip { offset: 17 };
        assert_eq!(e.to_json(), r#"{"type":"trace-skip","offset":17}"#);
        assert_eq!(e.kind(), "trace-skip");
    }
}
