//! Structured tracing: nested spans, per-stage latency histograms, and a
//! JSONL span stream.
//!
//! The probe layer answers *what happened* (hits, misses, evictions); this
//! module answers *where the time went*. A [`SpanGuard`] measures one stage
//! of work on the monotonic clock and, on drop, feeds a process-wide
//! lock-sharded [`LatencyRecorder`] (log2-bucketed [`Histogram`]s with
//! p50/p90/p99/p999 summaries) and — when a JSONL sink is installed — emits
//! one line per closed span, reconstructable into a per-request timeline.
//!
//! # Cost model (the NoopProbe guarantee, extended)
//!
//! Tracing is **off by default**. The global [`TraceLevel`] is a single
//! atomic; at [`TraceLevel::Off`] a [`span`] call is one relaxed load and an
//! inert guard — no clock read, no allocation, no lock. Call sites sit at
//! batch-chunk boundaries (thousands of references apart), never inside the
//! branchless per-reference loops, so an untraced run keeps the fused-kernel
//! throughput. At [`TraceLevel::Latency`] each span costs two clock reads
//! plus one sharded-mutex histogram update; [`TraceLevel::Full`] adds id
//! allocation and one JSONL line per span.
//!
//! # Trace trees
//!
//! Spans nest through a thread-local context stack: a span opened while
//! another is open becomes its child. Work that hops threads (a service
//! handler enqueueing onto a dispatcher pool) carries a [`SpanCtx`] across
//! and re-enters it with [`enter`], so the simulate span on a worker thread
//! still parents back to the originating request. Guards close in LIFO
//! order, which means a parent's JSONL line is always written *after* every
//! child's — consumers can rebuild the tree in one forward pass.
//!
//! ```
//! use dynex_obs::span;
//!
//! // Off by default: this is an inert guard, not a measurement.
//! let guard = span::span("example");
//! drop(guard);
//!
//! // A standalone recorder (the global one works the same way).
//! let recorder = span::LatencyRecorder::new();
//! recorder.record("simulate", std::time::Duration::from_micros(250));
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot["simulate"].histogram.total(), 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::registry::Histogram;

/// How much the tracing layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing: spans are inert guards (the zero-cost default).
    Off,
    /// Span durations feed the global [`LatencyRecorder`]; no span stream.
    Latency,
    /// Latency recording plus one JSONL line per closed span.
    Full,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            2 => TraceLevel::Full,
            1 => TraceLevel::Latency,
            _ => TraceLevel::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Latency => 1,
            TraceLevel::Full => 2,
        }
    }
}

/// The global level, separate from the lazy tracer state so the off path is
/// a single relaxed load with no `OnceLock` indirection.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Ids are process-unique and never zero (0 is "no parent" on the wire).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Lazily initialized global state: the clock epoch for `start_us`, the
/// latency recorder, and the optional JSONL sink.
struct GlobalTracer {
    epoch: Instant,
    latency: LatencyRecorder,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

fn global() -> &'static GlobalTracer {
    static GLOBAL: OnceLock<GlobalTracer> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalTracer {
        epoch: Instant::now(),
        latency: LatencyRecorder::new(),
        sink: Mutex::new(None),
    })
}

/// A mutex whose protected state stays valid across a panicking holder:
/// histograms and the JSONL sink are append-only, so recovering the guard
/// beats poisoning the whole observability layer.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The ambient span stack; the top entry parents new spans.
    static CONTEXT: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
}

/// The current tracing level.
pub fn level() -> TraceLevel {
    TraceLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Sets the tracing level process-wide.
pub fn set_level(level: TraceLevel) {
    LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// Raises the level to at least [`TraceLevel::Latency`] (never lowers it) —
/// what a service does at boot so `/metrics` has per-stage histograms even
/// when no span stream was requested.
pub fn enable_latency() {
    let _ = LEVEL.compare_exchange(
        TraceLevel::Off.as_u8(),
        TraceLevel::Latency.as_u8(),
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}

/// Installs a JSONL sink for closed spans and raises the level to
/// [`TraceLevel::Full`]. Each span is written (and flushed) as one line:
///
/// ```json
/// {"trace":"000000000000002a","span":43,"parent":42,"stage":"parse","start_us":17,"dur_us":5}
/// ```
///
/// `parent` is 0 for a root span; `start_us` is monotonic, relative to the
/// first use of the tracing layer in this process.
pub fn install_jsonl_writer(writer: Box<dyn Write + Send>) {
    *lock_recover(&global().sink) = Some(writer);
    set_level(TraceLevel::Full);
}

/// Opens (truncates) `path` and installs it via [`install_jsonl_writer`].
pub fn install_jsonl_path(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    install_jsonl_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Removes the JSONL sink (flushing it) and drops the level back to
/// [`TraceLevel::Latency`] if it was [`TraceLevel::Full`]. Returns the
/// writer so tests can inspect what was written.
pub fn take_jsonl_writer() -> Option<Box<dyn Write + Send>> {
    let mut writer = lock_recover(&global().sink).take();
    if let Some(w) = writer.as_mut() {
        let _ = w.flush();
    }
    let _ = LEVEL.compare_exchange(
        TraceLevel::Full.as_u8(),
        TraceLevel::Latency.as_u8(),
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    writer
}

/// Flushes the JSONL sink, if one is installed. Span lines are flushed as
/// they are written, so this matters only for exotic buffered writers.
pub fn flush_jsonl() {
    if let Some(w) = lock_recover(&global().sink).as_mut() {
        let _ = w.flush();
    }
}

/// Allocates a fresh process-unique trace id (never zero). Always available
/// — services stamp every request with one for the wire contract even when
/// tracing is off.
pub fn fresh_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Renders a trace id the way the wire contract does: 16 lowercase hex
/// digits (the `X-Dynex-Trace` header value and the JSONL `trace` field).
pub fn trace_hex(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// A position in a trace tree: which trace, and which span parents new work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The trace (request) this work belongs to.
    pub trace_id: u64,
    /// The span that parents anything opened under this context.
    pub span_id: u64,
}

/// The innermost ambient span context on this thread, if any.
pub fn current() -> Option<SpanCtx> {
    CONTEXT.with(|stack| stack.borrow().last().copied())
}

/// Re-enters a context carried across threads: spans opened on this thread
/// while the guard lives become children of `ctx`. No-op below
/// [`TraceLevel::Full`] (there is no tree to attach to).
pub fn enter(ctx: SpanCtx) -> CtxGuard {
    if level() != TraceLevel::Full {
        return CtxGuard { entered: false };
    }
    CONTEXT.with(|stack| stack.borrow_mut().push(ctx));
    CtxGuard { entered: true }
}

/// Restores the ambient context stack on drop (see [`enter`]).
#[must_use = "dropping the guard immediately exits the context"]
pub struct CtxGuard {
    entered: bool,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.entered {
            CONTEXT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Opens a span for `stage`: a child of the current ambient span, or a new
/// root (fresh trace id) when none is open. Closes when the guard drops.
pub fn span(stage: &'static str) -> SpanGuard {
    open_span(stage, None)
}

/// Opens a **root** span bound to an explicit `trace_id` (allocated with
/// [`fresh_trace_id`]), ignoring any ambient context — the request entry
/// point uses this so the span tree carries the id echoed on the wire.
pub fn root_span(stage: &'static str, trace_id: u64) -> SpanGuard {
    open_span(stage, Some(trace_id))
}

fn open_span(stage: &'static str, root_trace: Option<u64>) -> SpanGuard {
    let level = level();
    if level == TraceLevel::Off {
        return SpanGuard { active: None };
    }
    let full = if level == TraceLevel::Full {
        let span_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent) = match root_trace {
            Some(trace_id) => (trace_id, 0),
            None => match current() {
                Some(ctx) => (ctx.trace_id, ctx.span_id),
                None => (fresh_trace_id(), 0),
            },
        };
        let ctx = SpanCtx { trace_id, span_id };
        CONTEXT.with(|stack| stack.borrow_mut().push(ctx));
        Some(FullSpan { ctx, parent })
    } else {
        None
    };
    SpanGuard {
        active: Some(ActiveSpan {
            stage,
            start: Instant::now(),
            full,
        }),
    }
}

struct FullSpan {
    ctx: SpanCtx,
    parent: u64,
}

struct ActiveSpan {
    stage: &'static str,
    start: Instant,
    full: Option<FullSpan>,
}

/// A live span; dropping it closes the span (records the duration and, at
/// [`TraceLevel::Full`], writes the JSONL line).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's context, for carrying across threads into [`enter`].
    /// `None` unless the level is [`TraceLevel::Full`].
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.active
            .as_ref()
            .and_then(|a| a.full.as_ref())
            .map(|f| f.ctx)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration = active.start.elapsed();
        let tracer = global();
        tracer.latency.record(active.stage, duration);
        if let Some(full) = active.full {
            // Pop this span from the ambient stack. Guards drop in LIFO
            // order under normal scoping; a search keeps a stray
            // out-of-order drop from corrupting unrelated entries.
            CONTEXT.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|c| c.span_id == full.ctx.span_id) {
                    stack.remove(pos);
                }
            });
            let start_us = active
                .start
                .saturating_duration_since(tracer.epoch)
                .as_micros() as u64;
            emit_line(
                tracer,
                full.ctx,
                full.parent,
                active.stage,
                start_us,
                duration,
            );
        }
    }
}

/// Records an externally measured duration for `stage`: the histogram entry
/// a [`span`] would have made, plus (at [`TraceLevel::Full`]) a span line
/// parented under the current ambient context. For call sites that already
/// hold an elapsed time (the engine's per-attempt accounting).
pub fn record_stage(stage: &'static str, duration: Duration) {
    let level = level();
    if level == TraceLevel::Off {
        return;
    }
    let tracer = global();
    tracer.latency.record(stage, duration);
    if level == TraceLevel::Full {
        let span_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent) = match current() {
            Some(ctx) => (ctx.trace_id, ctx.span_id),
            None => (fresh_trace_id(), 0),
        };
        let now_us = Instant::now()
            .saturating_duration_since(tracer.epoch)
            .as_micros() as u64;
        let start_us = now_us.saturating_sub(duration.as_micros() as u64);
        emit_line(
            tracer,
            SpanCtx { trace_id, span_id },
            parent,
            stage,
            start_us,
            duration,
        );
    }
}

fn emit_line(
    tracer: &GlobalTracer,
    ctx: SpanCtx,
    parent: u64,
    stage: &'static str,
    start_us: u64,
    duration: Duration,
) {
    let mut sink = lock_recover(&tracer.sink);
    if let Some(w) = sink.as_mut() {
        let line = format!(
            r#"{{"trace":"{}","span":{},"parent":{},"stage":"{}","start_us":{},"dur_us":{}}}"#,
            trace_hex(ctx.trace_id),
            ctx.span_id,
            parent,
            crate::json::escape(stage),
            start_us,
            duration.as_micros() as u64
        );
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// The global recorder's per-stage snapshot (see
/// [`LatencyRecorder::snapshot`]).
pub fn latency_snapshot() -> BTreeMap<String, StageStats> {
    global().latency.snapshot()
}

/// The global recorder's percentile summary JSON (see
/// [`LatencyRecorder::summary_json`]).
pub fn latency_summary_json() -> String {
    global().latency.summary_json()
}

/// Log2 bucket preset: inclusive upper bounds `1, 2, 4, …, 2^30`
/// microseconds (~18 minutes), overflow above. One shape for every stage so
/// shard merging is always defined.
pub const LATENCY_BUCKETS_MAX_EXP: u32 = 30;

/// Shards in a [`LatencyRecorder`]: enough that per-connection handler
/// threads rarely contend, small enough that snapshots stay cheap.
const LATENCY_SHARDS: usize = 8;

/// Per-stage latency accounting: the log2 histogram plus an exact total
/// (bucket upper bounds alone cannot reconstruct a faithful sum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Microsecond durations in [`LATENCY_BUCKETS_MAX_EXP`] log2 buckets.
    pub histogram: Histogram,
    /// Exact sum of recorded durations, in microseconds.
    pub total_us: u64,
}

impl StageStats {
    fn new() -> StageStats {
        StageStats {
            histogram: Histogram::pow2(LATENCY_BUCKETS_MAX_EXP),
            total_us: 0,
        }
    }

    fn merge(&mut self, other: &StageStats) {
        self.histogram.merge(&other.histogram);
        self.total_us += other.total_us;
    }
}

/// A lock-sharded stage → latency-histogram map.
///
/// Writers hash their thread onto one of a fixed set of shards, so
/// concurrent handler threads recording the same stage rarely share a
/// mutex; readers merge every shard into one snapshot. Built on
/// [`Histogram`] with the [`LATENCY_BUCKETS_MAX_EXP`] log2 preset.
#[derive(Debug)]
pub struct LatencyRecorder {
    shards: Vec<Mutex<BTreeMap<String, StageStats>>>,
}

impl Default for LatencyRecorder {
    fn default() -> LatencyRecorder {
        LatencyRecorder::new()
    }
}

/// Round-robin shard assignment, one slot per thread on first use.
fn shard_index(n_shards: usize) -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: std::cell::Cell<usize> =
            const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v % n_shards
    })
}

impl LatencyRecorder {
    /// An empty recorder with the default shard count.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::with_shards(LATENCY_SHARDS)
    }

    /// An empty recorder with `n_shards` shards (clamped to at least 1).
    pub fn with_shards(n_shards: usize) -> LatencyRecorder {
        LatencyRecorder {
            shards: (0..n_shards.max(1))
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Records one duration for `stage` (bucketed in microseconds).
    pub fn record(&self, stage: &str, duration: Duration) {
        self.record_us(stage, duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one duration for `stage`, already in microseconds.
    pub fn record_us(&self, stage: &str, us: u64) {
        let shard = &self.shards[shard_index(self.shards.len())];
        let mut map = lock_recover(shard);
        match map.get_mut(stage) {
            Some(stats) => {
                stats.histogram.record(us);
                stats.total_us += us;
            }
            None => {
                let mut stats = StageStats::new();
                stats.histogram.record(us);
                stats.total_us = us;
                map.insert(stage.to_owned(), stats);
            }
        }
    }

    /// Merges every shard into one stage → stats map (deterministic order).
    pub fn snapshot(&self) -> BTreeMap<String, StageStats> {
        let mut merged: BTreeMap<String, StageStats> = BTreeMap::new();
        for shard in &self.shards {
            for (stage, stats) in lock_recover(shard).iter() {
                match merged.get_mut(stage) {
                    Some(acc) => acc.merge(stats),
                    None => {
                        merged.insert(stage.clone(), stats.clone());
                    }
                }
            }
        }
        merged
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|shard| lock_recover(shard).is_empty())
    }

    /// Percentile summary JSON keyed by stage:
    ///
    /// ```json
    /// {"simulate":{"count":12,"total_us":3400,"p50_us":256,"p90_us":512,"p99_us":512,"p999_us":512}}
    /// ```
    ///
    /// Percentiles are bucket upper bounds (see [`Histogram::quantile`]).
    pub fn summary_json(&self) -> String {
        summary_json(&self.snapshot())
    }
}

/// Renders a [`LatencyRecorder::snapshot`] as the percentile summary JSON
/// document (also usable on a merged snapshot from several recorders).
pub fn summary_json(snapshot: &BTreeMap<String, StageStats>) -> String {
    let mut out = String::from("{");
    for (i, (stage, stats)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let q = |p: f64| {
            stats
                .histogram
                .quantile(p)
                .map_or_else(|| "null".to_owned(), |v| v.to_string())
        };
        out.push_str(&format!(
            r#""{}":{{"count":{},"total_us":{},"p50_us":{},"p90_us":{},"p99_us":{},"p999_us":{}}}"#,
            crate::json::escape(stage),
            stats.histogram.total(),
            stats.total_us,
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use std::sync::Arc;

    /// Tests here mutate process-global tracer state; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// A `Write` handle tests can read back after handing it to the sink.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn captured_lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<Json> {
        let raw = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        raw.lines().map(|l| json::parse(l).unwrap()).collect()
    }

    fn field(span: &Json, key: &str) -> u64 {
        span.get(key).and_then(Json::as_u64).unwrap()
    }

    #[test]
    fn off_level_spans_are_inert() {
        let _lock = lock_recover(&TEST_LOCK);
        set_level(TraceLevel::Off);
        let guard = span("inert");
        assert!(guard.ctx().is_none());
        assert!(current().is_none());
        drop(guard);
    }

    #[test]
    fn nested_spans_parent_correctly_and_parents_close_last() {
        let _lock = lock_recover(&TEST_LOCK);
        let buf = Arc::new(Mutex::new(Vec::new()));
        install_jsonl_writer(Box::new(SharedBuf(Arc::clone(&buf))));

        let trace_id = fresh_trace_id();
        {
            let root = root_span("request", trace_id);
            let root_ctx = root.ctx().unwrap();
            assert_eq!(root_ctx.trace_id, trace_id);
            {
                let child = span("parse");
                let child_ctx = child.ctx().unwrap();
                assert_eq!(child_ctx.trace_id, trace_id);
                let grand = span("decode");
                assert_eq!(grand.ctx().unwrap().trace_id, trace_id);
            }
            record_stage("attempt", Duration::from_micros(5));
        }
        drop(take_jsonl_writer());
        set_level(TraceLevel::Off);

        let spans = captured_lines(&buf);
        let ours: Vec<&Json> = spans
            .iter()
            .filter(|s| s.get("trace").and_then(Json::as_str) == Some(&trace_hex(trace_id)))
            .collect();
        assert_eq!(ours.len(), 4, "request, parse, decode, attempt");

        // Closing order: children before parents, the root last.
        let stages: Vec<&str> = ours
            .iter()
            .map(|s| s.get("stage").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(stages, ["decode", "parse", "attempt", "request"]);

        // Ids are unique; parent links form the expected tree.
        let mut ids: Vec<u64> = ours.iter().map(|s| field(s, "span")).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids must be unique");
        let by_stage = |stage: &str| {
            *ours
                .iter()
                .find(|s| s.get("stage").and_then(Json::as_str) == Some(stage))
                .unwrap()
        };
        let root = by_stage("request");
        assert_eq!(field(root, "parent"), 0);
        assert_eq!(field(by_stage("parse"), "parent"), field(root, "span"));
        assert_eq!(
            field(by_stage("decode"), "parent"),
            field(by_stage("parse"), "span")
        );
        // record_stage ran while only the root was open.
        assert_eq!(field(by_stage("attempt"), "parent"), field(root, "span"));
        assert_eq!(field(by_stage("attempt"), "dur_us"), 5);
    }

    #[test]
    fn enter_carries_context_across_threads() {
        let _lock = lock_recover(&TEST_LOCK);
        let buf = Arc::new(Mutex::new(Vec::new()));
        install_jsonl_writer(Box::new(SharedBuf(Arc::clone(&buf))));

        let trace_id = fresh_trace_id();
        let root = root_span("request", trace_id);
        let ctx = root.ctx().unwrap();
        std::thread::spawn(move || {
            let _entered = enter(ctx);
            let _child = span("worker");
        })
        .join()
        .unwrap();
        drop(root);
        drop(take_jsonl_writer());
        set_level(TraceLevel::Off);

        let spans = captured_lines(&buf);
        let worker = spans
            .iter()
            .find(|s| s.get("stage").and_then(Json::as_str) == Some("worker"))
            .unwrap();
        assert_eq!(
            worker.get("trace").and_then(Json::as_str),
            Some(trace_hex(trace_id).as_str())
        );
        assert_eq!(field(worker, "parent"), ctx.span_id);
    }

    #[test]
    fn latency_recorder_snapshot_merges_shards_and_summarizes() {
        let recorder = Arc::new(LatencyRecorder::with_shards(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for us in [100u64, 200, 400] {
                        recorder.record_us("simulate", us);
                    }
                    recorder.record_us("parse", 3);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot["simulate"].histogram.total(), 24);
        assert_eq!(snapshot["simulate"].total_us, 8 * 700);
        assert_eq!(snapshot["parse"].histogram.total(), 8);

        let summary = json::parse(&recorder.summary_json()).unwrap();
        let simulate = summary.get("simulate").unwrap();
        assert_eq!(simulate.get("count").and_then(Json::as_u64), Some(24));
        assert_eq!(simulate.get("total_us").and_then(Json::as_u64), Some(5600));
        // 100 → bucket bound 128; 400 → bound 512.
        assert_eq!(simulate.get("p50_us").and_then(Json::as_u64), Some(256));
        assert_eq!(simulate.get("p999_us").and_then(Json::as_u64), Some(512));
    }

    #[test]
    fn empty_recorder_is_empty_and_summarizes_to_empty_object() {
        let recorder = LatencyRecorder::new();
        assert!(recorder.is_empty());
        assert_eq!(recorder.summary_json(), "{}");
    }

    #[test]
    fn trace_hex_is_sixteen_lowercase_digits() {
        assert_eq!(trace_hex(0x2a), "000000000000002a");
        assert_eq!(trace_hex(u64::MAX), "ffffffffffffffff");
    }
}
