//! The full-fat probe: counters, histograms, heatmap, and interval series
//! in one sink.

use std::collections::HashMap;

use crate::event::{Event, Outcome};
use crate::interval::IntervalSeries;
use crate::probe::Probe;
use crate::registry::{Histogram, MetricsRegistry};

/// Largest power-of-two reuse-distance bucket exponent (2^20 accesses);
/// larger distances fall in the overflow bucket.
const REUSE_MAX_EXP: u32 = 20;

/// A probe aggregating everything the exporters can write:
///
/// * per-event-kind counters (accesses, hits, misses, evictions, sticky
///   flips, hit-last updates, exclusion loads/bypasses),
/// * a reuse-distance histogram (accesses between successive touches of the
///   same address, power-of-two buckets),
/// * a per-set conflict heatmap (evictions per set),
/// * an [`IntervalSeries`] of per-window miss rates.
///
/// # Examples
///
/// ```
/// use dynex_obs::{Cause, Collector, Event, Outcome, Probe};
///
/// let mut c = Collector::new(1000);
/// c.emit(Event::Access { addr: 0, set: 0, outcome: Outcome::Miss, cause: Cause::Cold });
/// c.emit(Event::Access { addr: 0, set: 0, outcome: Outcome::Hit, cause: Cause::Resident });
/// let m = c.registry();
/// assert_eq!(m.counter("accesses"), 2);
/// assert_eq!(m.counter("misses"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    accesses: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    sticky_flips: u64,
    hit_last_updates: u64,
    exclusion_loads: u64,
    exclusion_bypasses: u64,
    trace_skips: u64,
    reuse: Histogram,
    last_touch: HashMap<u32, u64>,
    conflicts_by_set: Vec<u64>,
    intervals: IntervalSeries,
}

impl Collector {
    /// Creates a collector with `interval_window` accesses per interval
    /// window.
    pub fn new(interval_window: u64) -> Collector {
        Collector {
            accesses: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            sticky_flips: 0,
            hit_last_updates: 0,
            exclusion_loads: 0,
            exclusion_bypasses: 0,
            trace_skips: 0,
            reuse: Histogram::pow2(REUSE_MAX_EXP),
            last_touch: HashMap::new(),
            conflicts_by_set: Vec::new(),
            intervals: IntervalSeries::new(interval_window),
        }
    }

    /// Folds another collector into this one (shard/job merging).
    ///
    /// Counters, per-set conflict counts, the reuse-distance histogram, and
    /// the interval series are all merged with their own `merge` semantics.
    /// Reuse distances remain as recorded by each collector — for
    /// set-sharded runs they are measured in shard-local access counts, and
    /// `other`'s per-address last-touch positions are not carried over (they
    /// index into `other`'s private access counter).
    ///
    /// # Panics
    ///
    /// Panics if the interval window sizes differ.
    pub fn merge(&mut self, other: &Collector) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.sticky_flips += other.sticky_flips;
        self.hit_last_updates += other.hit_last_updates;
        self.exclusion_loads += other.exclusion_loads;
        self.exclusion_bypasses += other.exclusion_bypasses;
        self.trace_skips += other.trace_skips;
        self.reuse.merge(&other.reuse);
        if other.conflicts_by_set.len() > self.conflicts_by_set.len() {
            self.conflicts_by_set
                .resize(other.conflicts_by_set.len(), 0);
        }
        for (c, o) in self
            .conflicts_by_set
            .iter_mut()
            .zip(&other.conflicts_by_set)
        {
            *c += o;
        }
        self.intervals.merge(&other.intervals);
    }

    /// Evictions per set, indexed by set number (sets never evicted from may
    /// be absent from the tail).
    pub fn conflicts_by_set(&self) -> &[u64] {
        &self.conflicts_by_set
    }

    /// The interval series accumulated so far.
    pub fn intervals(&self) -> &IntervalSeries {
        &self.intervals
    }

    /// The reuse-distance histogram accumulated so far.
    pub fn reuse_distance(&self) -> &Histogram {
        &self.reuse
    }

    /// Snapshots everything into a [`MetricsRegistry`] for export.
    pub fn registry(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.set("accesses", self.accesses);
        m.set("hits", self.hits);
        m.set("misses", self.misses);
        m.set("evictions", self.evictions);
        m.set("sticky-flips", self.sticky_flips);
        m.set("hit-last-updates", self.hit_last_updates);
        m.set("exclusion-loads", self.exclusion_loads);
        m.set("exclusion-bypasses", self.exclusion_bypasses);
        if self.trace_skips > 0 {
            m.set("trace-skips", self.trace_skips);
        }
        m.put_histogram("reuse-distance", self.reuse.clone());
        if !self.conflicts_by_set.is_empty() {
            m.put_histogram("set-conflicts", self.set_conflicts_histogram());
        }
        m
    }

    /// Encodes the per-set eviction counts as a histogram whose bucket i
    /// (bound i+1) carries set i's eviction count; the overflow bucket is
    /// unused. This keeps the registry's export format uniform.
    fn set_conflicts_histogram(&self) -> Histogram {
        let n = self.conflicts_by_set.len() as u64;
        let mut counts = self.conflicts_by_set.clone();
        counts.push(0); // empty overflow bucket
        Histogram::from_parts((1..=n).collect(), counts)
    }

    /// Per-set conflict heatmap as CSV (`set,evictions`).
    pub fn heatmap_to_csv(&self) -> String {
        let mut out = String::from("set,evictions\n");
        for (set, count) in self.conflicts_by_set.iter().enumerate() {
            out.push_str(&format!("{set},{count}\n"));
        }
        out
    }
}

impl Probe for Collector {
    fn emit(&mut self, event: Event) {
        match event {
            Event::Access { addr, outcome, .. } => {
                self.accesses += 1;
                let miss = outcome.is_miss();
                match outcome {
                    Outcome::Hit => self.hits += 1,
                    Outcome::Miss => self.misses += 1,
                }
                let now = self.accesses;
                if let Some(prev) = self.last_touch.insert(addr, now) {
                    self.reuse.record(now - prev);
                }
                self.intervals.record(miss);
            }
            Event::Eviction { set, .. } => {
                self.evictions += 1;
                let set = set as usize;
                if set >= self.conflicts_by_set.len() {
                    self.conflicts_by_set.resize(set + 1, 0);
                }
                self.conflicts_by_set[set] += 1;
            }
            Event::StickyFlip { .. } => self.sticky_flips += 1,
            Event::HitLastUpdate { .. } => self.hit_last_updates += 1,
            Event::ExclusionDecision { loaded, .. } => {
                if loaded {
                    self.exclusion_loads += 1;
                } else {
                    self.exclusion_bypasses += 1;
                }
            }
            Event::TraceSkip { .. } => self.trace_skips += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Cause;

    fn access(addr: u32, outcome: Outcome) -> Event {
        Event::Access {
            addr,
            set: 0,
            outcome,
            cause: Cause::Unattributed,
        }
    }

    #[test]
    fn reuse_distance_tracks_per_address_gaps() {
        let mut c = Collector::new(100);
        c.emit(access(0, Outcome::Miss));
        c.emit(access(4, Outcome::Miss));
        c.emit(access(0, Outcome::Hit)); // distance 2
        c.emit(access(0, Outcome::Hit)); // distance 1
        assert_eq!(c.reuse_distance().total(), 2);
        // Distance 1 lands in bucket 0 (bound 1); distance 2 in bucket 1.
        assert_eq!(c.reuse_distance().counts()[0], 1);
        assert_eq!(c.reuse_distance().counts()[1], 1);
    }

    #[test]
    fn heatmap_accumulates_per_set() {
        let mut c = Collector::new(100);
        c.emit(Event::Eviction {
            set: 2,
            victim: 0,
            replacement: 1,
        });
        c.emit(Event::Eviction {
            set: 2,
            victim: 1,
            replacement: 0,
        });
        c.emit(Event::Eviction {
            set: 0,
            victim: 5,
            replacement: 6,
        });
        assert_eq!(c.conflicts_by_set(), &[1, 0, 2]);
        assert_eq!(c.heatmap_to_csv(), "set,evictions\n0,1\n1,0\n2,2\n");
    }

    #[test]
    fn registry_snapshot_is_complete() {
        let mut c = Collector::new(2);
        c.emit(access(0, Outcome::Miss));
        c.emit(Event::Eviction {
            set: 1,
            victim: 0,
            replacement: 9,
        });
        c.emit(Event::StickyFlip {
            set: 1,
            sticky: false,
        });
        c.emit(Event::HitLastUpdate {
            line: 3,
            hit_last: true,
        });
        c.emit(Event::ExclusionDecision {
            set: 1,
            line: 9,
            loaded: false,
        });
        let m = c.registry();
        assert_eq!(m.counter("accesses"), 1);
        assert_eq!(m.counter("misses"), 1);
        assert_eq!(m.counter("evictions"), 1);
        assert_eq!(m.counter("sticky-flips"), 1);
        assert_eq!(m.counter("hit-last-updates"), 1);
        assert_eq!(m.counter("exclusion-bypasses"), 1);
        assert!(m.histogram("reuse-distance").is_some());
        let sc = m.histogram("set-conflicts").unwrap();
        assert_eq!(sc.counts()[1], 1, "set 1 suffered the eviction");
    }

    #[test]
    fn merged_collectors_sum_counters_conflicts_and_reuse() {
        let mut a = Collector::new(10);
        a.emit(access(0, Outcome::Miss));
        a.emit(access(0, Outcome::Hit)); // reuse distance 1
        a.emit(Event::Eviction {
            set: 0,
            victim: 1,
            replacement: 2,
        });
        let mut b = Collector::new(10);
        b.emit(access(4, Outcome::Miss));
        b.emit(access(4, Outcome::Hit)); // reuse distance 1
        b.emit(Event::Eviction {
            set: 3,
            victim: 5,
            replacement: 6,
        });
        b.emit(Event::ExclusionDecision {
            set: 3,
            line: 6,
            loaded: true,
        });
        a.merge(&b);
        let m = a.registry();
        assert_eq!(m.counter("accesses"), 4);
        assert_eq!(m.counter("hits"), 2);
        assert_eq!(m.counter("misses"), 2);
        assert_eq!(m.counter("evictions"), 2);
        assert_eq!(m.counter("exclusion-loads"), 1);
        assert_eq!(a.conflicts_by_set(), &[1, 0, 0, 1]);
        assert_eq!(a.reuse_distance().total(), 2);
        assert_eq!(a.reuse_distance().counts()[0], 2, "both distance-1 gaps");
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_interval_windows() {
        Collector::new(10).merge(&Collector::new(20));
    }

    #[test]
    fn intervals_fed_by_accesses_only() {
        let mut c = Collector::new(2);
        c.emit(access(0, Outcome::Miss));
        c.emit(Event::StickyFlip {
            set: 0,
            sticky: true,
        }); // not an access
        c.emit(access(4, Outcome::Hit));
        assert_eq!(c.intervals().points().len(), 1);
        assert_eq!(c.intervals().points()[0].misses, 1);
    }
}
