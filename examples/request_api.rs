//! The request API end to end: build one typed [`SimulationRequest`], run
//! it three ways — in process, through a resume journal, and against an
//! in-process `dynex-serve` instance — and show that all three produce the
//! same statistics under the same content key.
//!
//! The request is the unit of reproducibility: its content key hashes
//! everything that can change the result (organization, geometry, kind
//! filter, and the trace bytes via their digest) and excludes everything
//! that cannot (kernel, worker count, deadlines). Journals, result caches,
//! and the service all speak this key.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example request_api
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use dynex_experiments::api::{self, SimulationRequest, SimulationResponse};
use dynex_serve::{ServeConfig, Server};

fn main() {
    // One typed request: dynamic exclusion, the paper's headline 32KB
    // geometry, over a synthetic `espresso` profile trace.
    let mut builder = SimulationRequest::builder();
    builder
        .org("de")
        .size("32K")
        .line(4)
        .profile("espresso")
        .refs(500_000);
    let request = builder.build().expect("a well-formed request");
    println!("request: {}\n", request.to_json());

    // 1. Run it in process.
    let direct = api::run(&request).expect("simulation runs");
    print!("in-process: {}", direct.render_text());
    println!("  key {} (cached: {})\n", direct.key, direct.cached);

    // 2. Run it through the service. The server binds an ephemeral port;
    //    a real deployment would use `dynex-serve --port 8080` and curl.
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let served = post_simulate(&server, &request);
    print!("served:     {}", served.render_text());
    println!("  key {} (cached: {})", served.key, served.cached);

    // 3. Repeat the request: the service answers from its result cache.
    let cached = post_simulate(&server, &request);
    println!(
        "repeat:     cached={} ({} simulation(s) executed for {} requests)\n",
        cached.cached,
        server.counter("sims-executed"),
        server.counter("requests-total"),
    );
    server.shutdown();
    server.join();

    assert_eq!(direct.stats, served.stats);
    assert_eq!(direct.stats, cached.stats);
    assert_eq!(direct.key, served.key);
    println!("all three answers carry identical statistics and key");
}

/// POSTs the request to the server's `/simulate` and parses the response.
fn post_simulate(server: &Server, request: &SimulationRequest) -> SimulationResponse {
    let body = request.to_json();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "POST /simulate HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let json = raw.split("\r\n\r\n").nth(1).expect("a response body");
    SimulationResponse::from_json(json).expect("a simulation response")
}
