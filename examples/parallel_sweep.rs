//! Parallel design-space sweep on the dynex-engine worker pool.
//!
//! Sweeps cache size × policy over one synthetic instruction stream, first
//! serially, then on all available cores, and shows that the results are
//! identical — the engine's determinism contract. Also demonstrates
//! set-partitioned parallelism inside a single long trace.
//!
//! Run with: `cargo run --example parallel_sweep`

use std::time::Instant;

use dynex_cache::CacheConfig;
use dynex_engine::{available_jobs, sharded_policy_stats, Job, PolicyKind, SweepPlan};
use dynex_workload::spec;

fn main() {
    let profile = spec::profile("gcc").expect("gcc profile exists");
    let addrs: Vec<u32> = profile
        .trace(400_000)
        .iter()
        .filter(|a| a.is_instruction())
        .map(|a| a.addr())
        .collect();
    println!(
        "trace: {} instruction fetches (synthetic gcc)\n",
        addrs.len()
    );

    // One job per (size, policy) point.
    let mut plan = SweepPlan::new();
    for kb in [1u32, 2, 4, 8, 16, 32] {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            plan.push(Job::new(config, policy));
        }
    }

    let cores = available_jobs();
    let started = Instant::now();
    let serial = plan.run(1, |job| job.run(&addrs).expect("dm/de/opt run everywhere"));
    let serial_time = started.elapsed();
    let started = Instant::now();
    let parallel = plan.run(cores, |job| job.run(&addrs).expect("dm/de/opt run everywhere"));
    let parallel_time = started.elapsed();

    assert_eq!(serial, parallel, "the engine is deterministic");
    println!(
        "{} sweep points: serial {:.2}s, {} worker(s) {:.2}s — identical results",
        plan.len(),
        serial_time.as_secs_f64(),
        cores,
        parallel_time.as_secs_f64()
    );

    println!("\n  size    policy  miss rate");
    for (job, stats) in plan.points().iter().zip(&parallel) {
        println!(
            "  {:>5}  {:>6}  {:>8.4}%",
            format!("{}K", job.config.size_bytes() / 1024),
            job.policy.name(),
            stats.miss_rate_percent()
        );
    }

    // Set-partitioned parallelism: one trace, many shards, exact merge.
    let config = CacheConfig::direct_mapped(32 * 1024, 4).expect("valid config");
    let serial = PolicyKind::DynamicExclusion
        .simulate(config, &addrs)
        .expect("de runs on every kernel");
    let sharded = sharded_policy_stats(config, PolicyKind::DynamicExclusion, &addrs, cores, cores);
    assert_eq!(serial, sharded);
    println!(
        "\nset-sharded DE @ 32K across {} shard(s): {} misses — exactly the serial count",
        cores,
        sharded.misses()
    );
}
