//! Section 7 of the paper: the same FSM applied to instruction, data, and
//! combined streams. Instruction reference patterns are what dynamic
//! exclusion recognizes; data patterns benefit far less.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example data_vs_instr
//! ```

use dynex::DeCache;
use dynex_cache::{run_addrs, CacheConfig, DirectMapped};
use dynex_trace::filter;
use dynex_workload::spec;

fn compare(tag: &str, addrs: &[u32], size_kb: u32) -> (f64, f64) {
    let config = CacheConfig::direct_mapped(size_kb * 1024, 4).expect("valid config");
    let mut dm = DirectMapped::new(config);
    let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
    let mut de = DeCache::new(config);
    let de_stats = run_addrs(&mut de, addrs.iter().copied());
    println!(
        "  {tag:<12} {size_kb:>4}KB  DM {:>7.3}%  DE {:>7.3}%  ({:+.1}% misses)",
        dm_stats.miss_rate_percent(),
        de_stats.miss_rate_percent(),
        -de_stats.percent_reduction_vs(&dm_stats),
    );
    (dm_stats.miss_rate_percent(), de_stats.miss_rate_percent())
}

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);

    for name in ["gcc", "doduc", "mat300"] {
        println!("\n=== {name} ===");
        let profile = spec::profile(name).expect("built-in profile");
        let trace = profile.trace(refs);
        let instr: Vec<u32> = filter::instructions(trace.iter())
            .map(|a| a.addr())
            .collect();
        let data: Vec<u32> = filter::data(trace.iter()).map(|a| a.addr()).collect();
        let all: Vec<u32> = trace.iter().map(|a| a.addr()).collect();

        for kb in [8u32, 32] {
            compare("instruction", &instr, kb);
            compare("data", &data, kb);
            compare("combined", &all, kb);
            println!();
        }
    }

    println!("expected (paper, Section 7): instruction streams benefit most; data");
    println!("streams barely move (a conventional DM cache is close to optimal for");
    println!("them); combined caches sit in between, tracking whichever reference");
    println!("kind dominates the misses at that size.");
}
