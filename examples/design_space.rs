//! A design-space walk for a cache architect: given a fixed 8KB budget with
//! 16-byte lines, is dynamic exclusion worth its ~3.5% area, compared to
//! a victim cache, a stream buffer, doubling capacity, or going 2-way?
//!
//! Exercises most of the public API in one place (Sections 2, 6, and
//! Figure 13 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example design_space
//! ```

use dynex::{HashedStore, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    run_addrs, CacheConfig, DirectMapped, Replacement, SetAssociative, StreamBuffer, VictimCache,
};
use dynex_trace::filter;
use dynex_workload::spec;

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);

    println!("design space: 8KB instruction cache, 16B lines, synthetic SPEC'89 average\n");
    let names = spec::NAMES;
    let traces: Vec<Vec<u32>> = names
        .iter()
        .map(|n| {
            let p = spec::profile(n).expect("built-in profile");
            filter::instructions(p.trace(refs).iter())
                .map(|a| a.addr())
                .collect()
        })
        .collect();

    let base = CacheConfig::direct_mapped(8 * 1024, 16).expect("valid config");
    let double = CacheConfig::direct_mapped(16 * 1024, 16).expect("valid config");
    let two_way = CacheConfig::new(8 * 1024, 16, 2).expect("valid config");

    let avg = |f: &mut dyn FnMut(&[u32]) -> f64| -> f64 {
        traces.iter().map(|t| f(t)).sum::<f64>() / traces.len() as f64
    };

    let rows: Vec<(&str, f64)> = vec![
        (
            "8KB direct-mapped (baseline)",
            avg(&mut |t| {
                let mut c = DirectMapped::new(base);
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "8KB + dynamic exclusion (4 hashed bits)",
            avg(&mut |t| {
                let mut c = LastLineDeCache::with_store(base, HashedStore::new(base, 4));
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "8KB + 4-entry victim cache",
            avg(&mut |t| {
                let mut c = VictimCache::new(base, 4);
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "8KB + 4-deep stream buffer",
            avg(&mut |t| {
                let mut c = StreamBuffer::new(base, 4);
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "16KB direct-mapped (double the RAM)",
            avg(&mut |t| {
                let mut c = DirectMapped::new(double);
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "8KB 2-way LRU (slower access path)",
            avg(&mut |t| {
                let mut c = SetAssociative::new(two_way, Replacement::Lru);
                run_addrs(&mut c, t.iter().copied()).miss_rate_percent()
            }),
        ),
        (
            "8KB optimal DM w/ bypass (bound)",
            avg(&mut |t| {
                OptimalDirectMapped::simulate_with_lastline(base, t.iter().copied())
                    .miss_rate_percent()
            }),
        ),
    ];

    let baseline = rows[0].1;
    println!("{:<42} {:>10} {:>12}", "design", "miss %", "vs baseline");
    for (name, rate) in &rows {
        println!(
            "{:<42} {:>9.3}% {:>+11.1}%",
            name,
            rate,
            if baseline > 0.0 {
                (baseline - rate) / baseline * 100.0
            } else {
                0.0
            }
        );
    }
    println!(
        "\nsize cost: DE adds ~{:.1}% bits; doubling adds 100%; 2-way adds mux+tag latency.",
        LastLineDeCache::new(base).overhead_bits(4) as f64
            / (8.0 * 1024.0 * 8.0) // data bits only, conservative
            * 100.0
    );
}
