//! Two-level hierarchies with dynamic exclusion at L1 (Section 5 of the
//! paper): compare the three hit-last storage strategies as the L2 grows,
//! and watch the L1/L2 exclusion effect on L2 misses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example hierarchy
//! ```

use dynex::{DeHierarchy, HitLastStrategy};
use dynex_cache::{run_addrs, CacheConfig, DirectMapped, TwoLevel};
use dynex_trace::filter;
use dynex_workload::spec;

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);

    println!("generating a {refs}-reference synthetic `spice` instruction stream...");
    let profile = spec::profile("spice").expect("spice is a built-in profile");
    let trace = profile.trace(refs);
    let addrs: Vec<u32> = filter::instructions(trace.iter())
        .map(|a| a.addr())
        .collect();

    let l1 = CacheConfig::direct_mapped(32 * 1024, 4).expect("valid config");
    let strategies = [
        HitLastStrategy::Hashed { bits_per_line: 4 },
        HitLastStrategy::AssumeHit,
        HitLastStrategy::AssumeMiss,
    ];

    println!(
        "\n{:<10} {:>12} {:>14} {:>14} {:>14}",
        "L2/L1", "DM L1 miss%", "strategy", "L1 miss%", "L2 global miss%"
    );
    for ratio in [1u32, 4, 16, 64] {
        let l2 = CacheConfig::direct_mapped(32 * 1024 * ratio, 4).expect("valid config");

        let mut baseline = TwoLevel::new(DirectMapped::new(l1), DirectMapped::new(l2));
        run_addrs(&mut baseline, addrs.iter().copied());
        let b = baseline.hierarchy_stats();
        println!(
            "{:<10} {:>12.3} {:>14} {:>14.3} {:>14.3}",
            format!("{ratio}x"),
            b.l1.miss_rate_percent(),
            "(conventional)",
            b.l1.miss_rate_percent(),
            b.global_l2_miss_rate() * 100.0,
        );

        for strategy in strategies {
            let mut h = DeHierarchy::new(l1, l2, strategy).expect("valid hierarchy");
            run_addrs(&mut h, addrs.iter().copied());
            let s = h.hierarchy_stats();
            println!(
                "{:<10} {:>12} {:>14} {:>14.3} {:>14.3}",
                "",
                "",
                strategy.to_string(),
                s.l1.miss_rate_percent(),
                s.l2.misses() as f64 / s.l1.accesses().max(1) as f64 * 100.0,
            );
        }
        println!();
    }

    println!("paper's findings to look for:");
    println!(" * assume-hit at 1x degenerates to conventional direct-mapped behaviour;");
    println!(" * most of the L1 benefit arrives once L2 >= 4x L1;");
    println!(" * assume-miss/hashed (exclusive contents) lower the L2 miss rate,");
    println!("   assume-hit (inclusive) does not.");
}
