//! The paper's Section 3 patterns, end to end: build the exact reference
//! sequences, run the three caches, and watch the FSM decisions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example loop_patterns
//! ```

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{run, CacheConfig, DirectMapped};
use dynex_trace::Trace;
use dynex_workload::patterns;

fn show(name: &str, trace: &Trace, config: CacheConfig) {
    let mut dm = DirectMapped::new(config);
    let dm_stats = run(&mut dm, trace.iter());
    let mut de = DeCache::new(config);
    let de_stats = run(&mut de, trace.iter());
    let opt = OptimalDirectMapped::simulate(config, trace.iter().map(|a| a.addr()));

    println!("{name}  ({} references)", trace.len());
    println!(
        "  conventional DM  : {:>3} misses ({:>5.1}%)",
        dm_stats.misses(),
        dm_stats.miss_rate_percent()
    );
    println!(
        "  dynamic exclusion: {:>3} misses ({:>5.1}%)  [{} loads, {} bypasses]",
        de_stats.misses(),
        de_stats.miss_rate_percent(),
        de.de_stats().loads,
        de.de_stats().bypasses,
    );
    println!(
        "  optimal DM       : {:>3} misses ({:>5.1}%)",
        opt.misses(),
        opt.miss_rate_percent()
    );
    println!();
}

fn main() {
    // Any direct-mapped cache where a and b share a line; the paper's
    // Section 3 uses single-instruction lines.
    let config = CacheConfig::direct_mapped(64, 4).expect("valid config");
    let (a, b) = patterns::conflicting_pair(64);

    println!("Section 3 of McFarling'92, reproduced.\n");
    show(
        "conflict between loops       (a^10 b^10)^10",
        &patterns::conflict_between_loops(a, b, 10, 10),
        config,
    );
    show(
        "conflict between loop levels (a^10 b)^10",
        &patterns::conflict_between_loop_levels(a, b, 10, 10),
        config,
    );
    show(
        "conflict within a loop       (a b)^10",
        &patterns::conflict_within_loop(a, b, 10),
        config,
    );
    show(
        "three-way loop               (a b c)^10  [defeats one sticky bit]",
        &patterns::three_way_loop(a, b, b + 64, 10),
        config,
    );

    println!("paper's analytic table: DM 10/18/100%, OPT 10/10/55% — DE lands");
    println!("within two misses of optimal on each two-way pattern.");
}
