//! Where do the misses come from, and which ones can dynamic exclusion
//! remove? Classifies a benchmark's direct-mapped misses into the classic
//! three C's and contrasts the conflict share with what DE and the optimal
//! cache recover; then shows the write-traffic view of the same stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example miss_anatomy
//! ```

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{classify_direct_mapped, run_addrs, CacheConfig, WriteMode, WritebackCache};
use dynex_trace::filter;
use dynex_workload::spec;

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);

    let config = CacheConfig::direct_mapped(32 * 1024, 4).expect("valid config");

    println!("3C anatomy of instruction misses at 32KB/4B:\n");
    println!(
        "{:<10} {:>8} {:>11} {:>9} {:>9} {:>8} {:>8}",
        "benchmark", "miss %", "compulsory", "capacity", "conflict", "DE rm%", "OPT rm%"
    );
    for name in ["doduc", "espresso", "fpppp", "gcc", "spice"] {
        let profile = spec::profile(name).expect("built-in profile");
        let addrs: Vec<u32> = filter::instructions(profile.trace(refs).iter())
            .map(|a| a.addr())
            .collect();
        let classes = classify_direct_mapped(config, addrs.iter().copied());
        let total = classes.total_misses().max(1) as f64;
        let mut de = DeCache::new(config);
        let de_misses = run_addrs(&mut de, addrs.iter().copied()).misses();
        let opt_misses = OptimalDirectMapped::simulate(config, addrs.iter().copied()).misses();
        println!(
            "{:<10} {:>7.3}% {:>10.1}% {:>8.1}% {:>8.1}% {:>7.1}% {:>7.1}%",
            name,
            classes.miss_rate_percent(),
            classes.compulsory as f64 / total * 100.0,
            classes.capacity as f64 / total * 100.0,
            classes.conflict as f64 / total * 100.0,
            (total - de_misses as f64) / total * 100.0,
            (total - opt_misses as f64) / total * 100.0,
        );
    }

    println!(
        "\nnote: 'capacity' uses the classic fully-associative-LRU definition; on\n\
         cyclically re-executed code DE's per-line bypass can remove misses that\n\
         the 3C taxonomy files under capacity — bypassing beats global LRU there.\n"
    );

    // Write traffic on the data side of one benchmark.
    let profile = spec::profile("tomcatv").expect("built-in profile");
    let data: Vec<dynex_trace::Access> = filter::data(profile.trace(refs).iter()).collect();
    println!("tomcatv data-side traffic through an 8KB write-allocate cache:");
    for mode in [WriteMode::WriteBack, WriteMode::WriteThrough] {
        let mut cache = WritebackCache::new(
            CacheConfig::direct_mapped(8 * 1024, 4).expect("valid"),
            mode,
        );
        for &a in &data {
            cache.access(a);
        }
        cache.flush();
        println!(
            "  {:?}: miss rate {:.2}%, memory traffic: {}",
            mode,
            cache.stats().miss_rate_percent(),
            cache.traffic()
        );
    }
}
