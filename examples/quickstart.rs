//! Quickstart: compare a conventional direct-mapped instruction cache, the
//! same cache with dynamic exclusion, and the optimal direct-mapped cache on
//! a synthetic `doduc` workload — the paper's headline configuration
//! (32KB instruction cache). Set `DYNEX_REFS` to change the budget; short
//! budgets are cold-start dominated and understate the effect.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example quickstart
//! ```

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{run, CacheConfig, CacheSim, DirectMapped};
use dynex_trace::filter;
use dynex_workload::spec;

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);

    println!("generating {refs} references of the synthetic `doduc` workload...");
    let profile = spec::profile("doduc").expect("doduc is a built-in profile");
    let trace = profile.trace(refs);
    let instr_addrs: Vec<u32> = filter::instructions(trace.iter())
        .map(|a| a.addr())
        .collect();
    println!("{} instruction fetches\n", instr_addrs.len());

    println!("{:<44} {:>10} {:>10}", "cache", "misses", "miss rate");
    for size_kb in [8u32, 16, 32, 64] {
        let config = CacheConfig::direct_mapped(size_kb * 1024, 4).expect("valid config");

        let mut dm = DirectMapped::new(config);
        let dm_stats = run(
            &mut dm,
            instr_addrs.iter().map(|&a| dynex_trace::Access::fetch(a)),
        );

        let mut de = DeCache::new(config);
        let de_stats = run(
            &mut de,
            instr_addrs.iter().map(|&a| dynex_trace::Access::fetch(a)),
        );

        let opt_stats = OptimalDirectMapped::simulate(config, instr_addrs.iter().copied());

        println!(
            "{:<44} {:>10} {:>9.3}%",
            dm.label(),
            dm_stats.misses(),
            dm_stats.miss_rate_percent()
        );
        println!(
            "{:<44} {:>10} {:>9.3}%  ({:.1}% fewer misses than DM)",
            de.label(),
            de_stats.misses(),
            de_stats.miss_rate_percent(),
            de_stats.percent_reduction_vs(&dm_stats),
        );
        println!(
            "{:<44} {:>10} {:>9.3}%  ({:.1}% fewer misses than DM)",
            "optimal direct-mapped",
            opt_stats.misses(),
            opt_stats.miss_rate_percent(),
            opt_stats.percent_reduction_vs(&dm_stats),
        );
        println!();
    }
}
