//! Watching dynamic exclusion learn: probes on the Figure-3 workload.
//!
//! Attaches a [`dynex_obs::Collector`] to a conventional direct-mapped cache
//! and to a dynamic-exclusion cache running the same synthetic SPEC
//! instruction trace, then prints what aggregate miss rates cannot show:
//!
//! * a per-set conflict heatmap (evictions per set) — DE's bypasses drain
//!   the hot sets a conventional cache keeps thrashing,
//! * the FSM's own activity (sticky flips, exclusion load/bypass decisions),
//! * the miss rate per interval window — the learning curve.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dynex-experiments --example observability
//! ```

use dynex::DeCache;
use dynex_cache::{run_addrs, CacheConfig, DirectMapped};
use dynex_experiments::Workloads;
use dynex_obs::Collector;

/// Sets per heatmap row; each row aggregates this many consecutive sets.
const SETS_PER_ROW: usize = 8;
/// Characters available for the heatmap bar.
const BAR_WIDTH: usize = 50;

fn bar(count: u64, max: u64) -> String {
    let len = if max == 0 {
        0
    } else {
        (count as usize * BAR_WIDTH) / max as usize
    };
    "#".repeat(len)
}

fn main() {
    let refs: usize = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let window = (refs / 20).max(1) as u64;

    // A small cache makes the conflicts of the Figure 3 loop workload
    // visible set by set; the paper's headline 32KB would need a plot.
    let config = CacheConfig::direct_mapped(1024, 4).expect("valid config");
    let n_sets = config.n_sets() as usize;
    let workloads = Workloads::generate(refs);
    let addrs = workloads.instr_addrs("spice");

    let mut dm = DirectMapped::with_probe(config, Collector::new(window));
    let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
    let dm_obs = dm.into_probe();

    let mut de = DeCache::with_probe(config, Collector::new(window));
    let de_stats = run_addrs(&mut de, addrs.iter().copied());
    let de_obs = de.into_probe();

    println!(
        "spice instruction trace, {} references, {config}:\n",
        addrs.len()
    );
    println!(
        "  direct-mapped:     miss rate {:.3}%",
        dm_stats.miss_rate_percent()
    );
    println!(
        "  dynamic exclusion: miss rate {:.3}%",
        de_stats.miss_rate_percent()
    );

    let m = de_obs.registry();
    println!("\nFSM activity under dynamic exclusion:");
    println!(
        "  exclusion decisions: {} loads, {} bypasses",
        m.counter("exclusion-loads"),
        m.counter("exclusion-bypasses")
    );
    println!("  sticky flips: {}", m.counter("sticky-flips"));
    println!("  hit-last updates: {}", m.counter("hit-last-updates"));
    println!(
        "  evictions: {} (DM suffered {})",
        m.counter("evictions"),
        dm_obs.registry().counter("evictions")
    );

    // Per-set conflict heatmap, aggregated into rows of SETS_PER_ROW sets.
    let row_of = |per_set: &[u64]| -> Vec<u64> {
        (0..n_sets.div_ceil(SETS_PER_ROW))
            .map(|row| {
                (row * SETS_PER_ROW..((row + 1) * SETS_PER_ROW).min(n_sets))
                    .map(|s| per_set.get(s).copied().unwrap_or(0))
                    .sum()
            })
            .collect()
    };
    let dm_rows = row_of(dm_obs.conflicts_by_set());
    let de_rows = row_of(de_obs.conflicts_by_set());
    let max = dm_rows
        .iter()
        .chain(de_rows.iter())
        .copied()
        .max()
        .unwrap_or(0);

    println!(
        "\nConflict heatmap: evictions per {SETS_PER_ROW}-set group (# = {} evictions)",
        (max / BAR_WIDTH as u64).max(1)
    );
    println!(
        "{:>9}  {:>8}  {:<BAR_WIDTH$}  {:>8}  bar",
        "sets", "DM", "DM bar", "DE"
    );
    for (row, (dm_count, de_count)) in dm_rows.iter().zip(&de_rows).enumerate() {
        println!(
            "{:>4}-{:<4}  {:>8}  {:<BAR_WIDTH$}  {:>8}  {}",
            row * SETS_PER_ROW,
            (row + 1) * SETS_PER_ROW - 1,
            dm_count,
            bar(*dm_count, max),
            de_count,
            bar(*de_count, max),
        );
    }

    println!("\nMiss rate per {window}-access window (the learning curve):");
    println!("{:>8}  {:>8}  {:>8}", "window", "DM %", "DE %");
    for (dm_point, de_point) in dm_obs
        .intervals()
        .points()
        .iter()
        .zip(de_obs.intervals().points())
    {
        println!(
            "{:>8}  {:>8.3}  {:>8.3}",
            dm_point.index,
            dm_point.miss_rate() * 100.0,
            de_point.miss_rate() * 100.0
        );
    }
    println!("\nExport the same data from any trace with:");
    println!("  simcache trace.txt --size 1K --org de --events-out e.jsonl --metrics-out m.json --intervals-out i.csv --interval {window}");
}
