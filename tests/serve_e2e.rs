//! End-to-end tests for `dynex-serve`: real sockets, real threads, an
//! in-process [`Server`] per test (ephemeral ports, so the suite is green
//! at any `--test-threads`).
//!
//! Determinism policy: nothing here sleeps and hopes. Tests that depend on
//! service phase (a job *running*, a job *waiting in the queue*) observe
//! the probe counters (`sims-started`, `queued`) before acting, and use
//! [`ServeConfig::inject_sim_delay`] to hold a phase open long enough to
//! act in it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dynex_experiments::api::{SimulationRequest, SimulationResponse};
use dynex_serve::{ServeConfig, Server};

/// Sends one `Connection: close` HTTP request, returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn post_simulate(addr: SocketAddr, body: &str) -> (u16, String) {
    http(addr, "POST", "/simulate", body)
}

/// A small profile-trace request; `size` distinguishes content keys.
fn request_body(size: &str) -> String {
    format!(
        r#"{{"org":"de","size":"{size}","line":4,"trace":{{"source":"profile","profile":"espresso"}},"refs":50000}}"#
    )
}

/// Polls a server counter until it reaches `at_least` (10s budget).
fn await_counter(server: &Server, name: &str, at_least: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.counter(name) < at_least {
        assert!(
            Instant::now() < deadline,
            "counter {name} stuck at {} (wanted >= {at_least})",
            server.counter(name)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("server starts")
}

#[test]
fn health_metrics_and_routing() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));

    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains(r#""sims-executed":0"#),
        "fresh metrics: {body}"
    );

    assert_eq!(http(addr, "GET", "/nope", "").0, 404);
    assert_eq!(http(addr, "GET", "/simulate", "").0, 405);
    assert_eq!(post_simulate(addr, "{not json").0, 400);
    assert_eq!(post_simulate(addr, r#"{"org":"alien"}"#).0, 400);
    // A request that validates but names no loadable stream is a 400 too.
    assert_eq!(post_simulate(addr, r#"{"org":"dm"}"#).0, 400);

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_identical_requests_run_one_simulation() {
    let server = start(ServeConfig {
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = request_body("8K");

    // Leader in a thread; wait until its simulation is *running* so the
    // followers demonstrably arrive mid-flight.
    let leader = {
        let body = body.clone();
        std::thread::spawn(move || post_simulate(addr, &body))
    };
    await_counter(&server, "sims-started", 1);
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || post_simulate(addr, &body))
        })
        .collect();

    let (status, leader_body) = leader.join().expect("leader thread");
    assert_eq!(status, 200);
    for follower in followers {
        let (status, follower_body) = follower.join().expect("follower thread");
        assert_eq!(status, 200);
        assert_eq!(follower_body, leader_body, "coalesced answers are shared");
    }
    assert_eq!(server.counter("sims-executed"), 1, "single-flight");
    assert_eq!(server.counter("coalesced-hits"), 3);
    assert_eq!(server.counter("cache-hits"), 0);

    server.shutdown();
    server.join();
}

#[test]
fn repeats_hit_the_result_cache() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let body = request_body("4K");

    let (status, first) = post_simulate(addr, &body);
    assert_eq!(status, 200);
    let first = SimulationResponse::from_json(&first).expect("response JSON");
    assert!(!first.cached);

    let (status, second) = post_simulate(addr, &body);
    assert_eq!(status, 200);
    let second = SimulationResponse::from_json(&second).expect("response JSON");
    assert!(second.cached, "second identical request is a cache hit");
    assert_eq!(first.stats, second.stats);
    assert_eq!(first.key, second.key);
    assert_eq!(server.counter("sims-executed"), 1);
    assert_eq!(server.counter("cache-hits"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_rejects_with_429() {
    let server = start(ServeConfig {
        queue_capacity: 1,
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // A occupies the simulator; B occupies the single queue slot; C must
    // then bounce. Distinct sizes keep the three keys distinct (identical
    // keys would coalesce instead of queueing).
    let a = std::thread::spawn(move || post_simulate(addr, &request_body("1K")));
    await_counter(&server, "sims-started", 1); // A popped: queue is empty
    let b = std::thread::spawn(move || post_simulate(addr, &request_body("2K")));
    await_counter(&server, "queued", 2); // B is waiting in the queue
    let (status, body) = post_simulate(addr, &request_body("4K"));
    assert_eq!(status, 429, "third distinct request bounces: {body}");
    assert!(body.contains("queue is full"));
    assert_eq!(server.counter("rejected-429"), 1);

    // Backpressure is per-moment, not a ban: A and B complete fine, and
    // once the queue drains the rejected request succeeds on retry.
    assert_eq!(a.join().expect("request A").0, 200);
    assert_eq!(b.join().expect("request B").0, 200);
    let (status, _) = post_simulate(addr, &request_body("4K"));
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn rejected_leader_wakes_concurrent_duplicates() {
    // When a leader's enqueue bounces off a full queue, duplicates that
    // joined its flight in the claim window must be answered with the
    // relayed 429 — never parked forever on a flight nobody will fly
    // (which would also wedge graceful drain below).
    let server = start(ServeConfig {
        queue_capacity: 1,
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // A occupies the simulator, B the single queue slot.
    let a = std::thread::spawn(move || post_simulate(addr, &request_body("1K")));
    await_counter(&server, "sims-started", 1);
    let b = std::thread::spawn(move || post_simulate(addr, &request_body("2K")));
    await_counter(&server, "queued", 2);

    // A storm of *identical* further requests: one leads and is rejected;
    // the rest either lead a fresh (also doomed) claim or join a doomed
    // flight and must be woken. Every thread has to come back.
    let stormers: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || post_simulate(addr, &request_body("4K"))))
        .collect();
    for stormer in stormers {
        let (status, body) = stormer.join().expect("storm request answered");
        // 429 while the queue is full; 200 is possible for a late storm
        // thread that enqueues after A completes and frees the slot.
        assert!(
            status == 429 || status == 200,
            "unexpected answer: {status} {body}"
        );
        if status == 429 {
            assert!(body.contains("queue is full"), "{body}");
        }
    }
    assert_eq!(a.join().expect("request A").0, 200);
    assert_eq!(b.join().expect("request B").0, 200);

    // No leaked handler threads: drain completes.
    server.shutdown();
    server.join();
}

#[test]
fn responses_are_byte_identical_for_every_worker_count() {
    let sizes = ["1K", "2K", "4K", "8K", "16K", "32K"];
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for jobs in [1usize, 4] {
        let server = start(ServeConfig {
            jobs,
            // A real window so the concurrent posts actually share a plan.
            batch_window: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let addr = server.addr();
        let handles: Vec<_> = sizes
            .iter()
            .map(|size| {
                let body = request_body(size);
                std::thread::spawn(move || post_simulate(addr, &body))
            })
            .collect();
        let mut bodies = Vec::new();
        for handle in handles {
            let (status, body) = handle.join().expect("request thread");
            assert_eq!(status, 200);
            bodies.push(body);
        }
        bodies.sort();
        assert_eq!(server.counter("sims-executed"), sizes.len() as u64);
        transcripts.push(bodies);
        server.shutdown();
        server.join();
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "jobs=1 and jobs=4 serve identical bytes"
    );
}

#[test]
fn same_trace_batch_coalesces_into_one_sweep_pass() {
    // Hold the dispatcher busy on a decoy job while the real batch queues
    // up, so all of it lands in one dispatch (determinism policy: observe
    // counters, don't sleep and hope).
    let server = start(ServeConfig {
        jobs: 4,
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(1500),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let decoy = request_body("16K");
    let decoy_handle = std::thread::spawn(move || post_simulate(addr, &decoy));
    await_counter(&server, "sims-started", 1);

    // Six same-trace jobs across all three sweepable organizations, plus
    // one reference-kernel rider that must stay un-fused.
    let mut posts: Vec<String> = [
        ("dm", "1K"),
        ("de", "1K"),
        ("de", "4K"),
        ("opt", "2K"),
        ("de", "8K"),
        ("dm", "4K"),
    ]
    .iter()
    .map(|(org, size)| {
        format!(
            r#"{{"org":"{org}","size":"{size}","line":4,"trace":{{"source":"profile","profile":"espresso"}},"refs":50000}}"#
        )
    })
    .collect();
    posts.push(
        r#"{"org":"de","size":"2K","line":4,"kernel":"reference","trace":{"source":"profile","profile":"espresso"},"refs":50000}"#
            .to_owned(),
    );

    let handles: Vec<_> = posts
        .iter()
        .map(|body| {
            let body = body.clone();
            std::thread::spawn(move || post_simulate(addr, &body))
        })
        .collect();
    // All seven enqueued (the decoy's 1.5s budget dwarfs seven loopback
    // posts), so the next dispatch folds them into one batch.
    await_counter(&server, "queued", 8);

    let mut served = Vec::new();
    for handle in handles {
        let (status, body) = handle.join().expect("request thread");
        assert_eq!(status, 200, "{body}");
        served.push(body);
    }
    let (decoy_status, _) = decoy_handle.join().expect("decoy thread");
    assert_eq!(decoy_status, 200);

    // Bit-identity: every served body equals the offline per-request API
    // result, coalesced or not.
    for (body, request_json) in served.iter().zip(&posts) {
        let request = SimulationRequest::from_json(request_json).expect("request parses");
        let trace = dynex_experiments::api::load(&request).expect("trace loads");
        let expected = dynex_experiments::api::execute(&request, &trace).expect("offline run");
        assert_eq!(body, &expected.to_json(), "{request_json}");
    }
    assert_eq!(
        server.counter("fused-jobs"),
        6,
        "the six same-trace sweepable jobs rode one traversal"
    );
    server.shutdown();
    server.join();
}

#[test]
fn per_request_deadline_times_out_with_504() {
    let server = start(ServeConfig {
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(800),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = r#"{"org":"dm","size":"1K","line":4,"deadline_ms":40,"trace":{"source":"profile","profile":"espresso"},"refs":50000}"#;
    let started = Instant::now();
    let (status, response) = post_simulate(addr, body);
    assert_eq!(status, 504, "deadline overrun: {response}");
    assert!(response.contains("deadline"));
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "the 504 must not wait for the simulation to finish"
    );
    server.shutdown();
    server.join();
}

#[test]
fn offline_simcache_run_warm_starts_the_service() {
    let dir = std::env::temp_dir().join(format!("dynex-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("warm.txt");
    let journal_path = dir.join("warm.jsonl");
    let _ = std::fs::remove_file(&journal_path);

    // A tiny thrash trace in the text format.
    let mut text = String::new();
    for i in 0..400u32 {
        let addr = if i % 2 == 0 { 0 } else { 2048 };
        text.push_str(&format!("F 0x{addr:x}\n"));
    }
    std::fs::write(&trace_path, text).expect("write trace");

    // Offline run: simcache simulates and checkpoints into the journal.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_simcache"))
        .args([
            trace_path.to_str().unwrap(),
            "--size",
            "1K",
            "--line",
            "4",
            "--org",
            "de",
            "--kernel",
            "batch",
            "--resume",
            journal_path.to_str().unwrap(),
        ])
        .output()
        .expect("run simcache");
    assert!(output.status.success(), "{output:?}");
    let offline_stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");

    // Boot the service from that journal: the result is cached before the
    // first request ever arrives, and the response's text rendering is
    // byte-identical to what the offline CLI printed.
    let server = start(ServeConfig {
        warm_journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(server.counter("warm-start-entries"), 1);
    let body = format!(
        r#"{{"org":"de","size":"1K","line":4,"kernel":"batch","trace":{{"source":"path","path":"{}"}}}}"#,
        trace_path.display()
    );
    let (status, response) = post_simulate(server.addr(), &body);
    assert_eq!(status, 200);
    let response = SimulationResponse::from_json(&response).expect("response JSON");
    assert!(response.cached, "served from the warm-started cache");
    assert_eq!(server.counter("sims-executed"), 0, "no re-simulation");
    assert_eq!(response.render_text(), offline_stdout);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_dedups_repeated_journal_keys() {
    // Regression test for the dedup-on-replay guard: an append-only journal
    // can legitimately hold the same key several times (a result re-recorded
    // across runs, or two pre-fan-out processes appending to one file). The
    // warm boot must load each key exactly once.
    let dir = std::env::temp_dir().join(format!("dynex-serve-dup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal_path = dir.join("dup.jsonl");
    let _ = std::fs::remove_file(&journal_path);

    // First boot records one real result into the journal.
    let server = start(ServeConfig {
        warm_journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    });
    let (status, _) = post_simulate(server.addr(), &request_body("2K"));
    assert_eq!(status, 200);
    server.shutdown();
    server.join();

    // Duplicate the record on disk, twice, the way repeated re-records
    // would: three lines, one key.
    let line = std::fs::read_to_string(&journal_path)
        .expect("journal")
        .lines()
        .next()
        .expect("one record")
        .to_owned();
    let mut contents = format!("{line}\n");
    contents.push_str(&format!("{line}\n{line}\n"));
    std::fs::write(&journal_path, contents).expect("rewrite journal");

    // Reboot: one warm entry, not three, and it still serves from cache.
    let server = start(ServeConfig {
        warm_journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(server.counter("warm-start-entries"), 1);
    let (status, response) = post_simulate(server.addr(), &request_body("2K"));
    assert_eq!(status, 200);
    let response = SimulationResponse::from_json(&response).expect("response JSON");
    assert!(response.cached, "served from the deduped warm start");
    assert_eq!(server.counter("sims-executed"), 0);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = start(ServeConfig {
        batch_window: Duration::ZERO,
        inject_sim_delay: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let in_flight = {
        let body = request_body("2K");
        std::thread::spawn(move || post_simulate(addr, &body))
    };
    await_counter(&server, "sims-started", 1);

    let (status, body) = http(addr, "POST", "/shutdown", "");
    assert_eq!((status, body.as_str()), (200, r#"{"status":"draining"}"#));

    // Drain completes: join returns, and the in-flight request was served,
    // not dropped.
    server.join();
    let (status, _) = in_flight.join().expect("in-flight request");
    assert_eq!(status, 200);
    assert!(
        TcpStream::connect(addr).is_err(),
        "the listener is gone after drain"
    );
}

#[test]
fn trace_out_reconstructs_the_request_span_tree() {
    use std::sync::{Arc, Mutex};

    /// Captures the JSONL span stream in memory (the writer installed into
    /// the tracing layer is a clone sharing this buffer).
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    dynex_obs::span::install_jsonl_writer(Box::new(buf.clone()));

    let server = start(ServeConfig {
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Raw round-trip: the X-Dynex-Trace header is the key into the stream.
    let body = request_body("64K");
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /simulate HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let trace_hex = raw
        .lines()
        .find_map(|line| line.strip_prefix("X-Dynex-Trace: "))
        .expect("response carries the trace header")
        .trim()
        .to_owned();
    assert_eq!(trace_hex.len(), 16, "16 hex digits: {trace_hex}");

    server.shutdown();
    server.join();
    dynex_obs::span::take_jsonl_writer();

    // Reconstruct this request's tree from the stream. Other tests in this
    // process may interleave their own spans; the trace id isolates ours.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("UTF-8 stream");
    let needle = format!(r#""trace":"{trace_hex}""#);
    let mut spans: Vec<(u64, u64, String)> = Vec::new(); // (id, parent, stage) in close order
    for line in text.lines().filter(|l| l.contains(&needle)) {
        let parsed = dynex_obs::json::parse(line).expect("span line parses");
        let id = parsed
            .get("span")
            .and_then(|v| v.as_u64())
            .expect("span id");
        let parent = parsed
            .get("parent")
            .and_then(|v| v.as_u64())
            .expect("parent id");
        let stage = parsed
            .get("stage")
            .and_then(|v| v.as_str())
            .expect("stage")
            .to_owned();
        spans.push((id, parent, stage));
    }

    // One root, and it is the request span.
    let roots: Vec<_> = spans.iter().filter(|(_, parent, _)| *parent == 0).collect();
    assert_eq!(roots.len(), 1, "one root span: {spans:?}");
    assert_eq!(roots[0].2, "request");

    // The tree reaches from the HTTP accept all the way into the kernel.
    for stage in [
        "accept",
        "parse",
        "cache-lookup",
        "queue-wait",
        "simulate",
        "kernel.decode",
        "kernel.simulate",
        "respond",
    ] {
        assert!(
            spans.iter().any(|(_, _, s)| s == stage),
            "stage {stage} missing from the trace: {spans:?}"
        );
    }

    // Ids are unique; every parent exists and closes after its children
    // (so one forward pass over the stream reconstructs the tree).
    let mut seen = std::collections::HashSet::new();
    for (id, _, _) in &spans {
        assert!(seen.insert(*id), "duplicate span id {id}");
    }
    for (index, (_, parent, stage)) in spans.iter().enumerate() {
        if *parent == 0 {
            continue;
        }
        let parent_index = spans
            .iter()
            .position(|(id, _, _)| id == parent)
            .unwrap_or_else(|| panic!("span {stage} has unknown parent {parent}: {spans:?}"));
        assert!(
            parent_index > index,
            "parent of {stage} closed before its child: {spans:?}"
        );
    }
}

#[test]
fn request_round_trips_through_the_wire_format() {
    // The service accepts exactly what `SimulationRequest::to_json` emits —
    // an API client can parrot a canonicalized request back.
    let mut builder = SimulationRequest::builder();
    builder
        .org("de")
        .size("8K")
        .line(4)
        .profile("espresso")
        .refs(50_000);
    let request = builder.build().expect("valid request");

    let server = start(ServeConfig::default());
    let (status, body) = post_simulate(server.addr(), &request.to_json());
    assert_eq!(status, 200);
    let response = SimulationResponse::from_json(&body).expect("response JSON");
    assert_eq!(response.stats.accesses(), 50_000);
    server.shutdown();
    server.join();
}

#[test]
fn policy_zoo_requests_flow_through_the_service() {
    // PR 10: the two zoo policies reach the kernel through the same
    // SimulationRequest -> serve -> execute path as the paper's trio, with
    // the new `policy` wire spelling and the legacy `org` one.
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = post_simulate(
        addr,
        r#"{"policy":"ehc","size":"1K","line":4,"trace":{"source":"profile","profile":"espresso"},"refs":50000}"#,
    );
    assert_eq!(status, 200, "{body}");
    let ehc = SimulationResponse::from_json(&body).expect("response JSON");
    assert_eq!(ehc.label, "expected-hit-count direct-mapped");
    assert_eq!(ehc.stats.accesses(), 50_000);
    assert_eq!(ehc.stats.probes(), 50_000, "zoo policies account traffic");

    let (status, body) = post_simulate(
        addr,
        r#"{"org":"bwcost","size":"1K","line":4,"trace":{"source":"profile","profile":"espresso"},"refs":50000}"#,
    );
    assert_eq!(status, 200, "{body}");
    let bw = SimulationResponse::from_json(&body).expect("response JSON");
    assert_eq!(bw.label, "bandwidth-aware direct-mapped");
    assert!(bw.stats.misses() <= ehc.stats.misses() || bw.stats.misses() > 0);

    // A declared-unsupported kernel/policy combo is a loud structured
    // failure naming the supported kernels — never a silent fallback. (A
    // fresh geometry: content keys are kernel-independent, so reusing the
    // 1K point above would legitimately answer from the result cache.)
    let (status, body) = post_simulate(
        addr,
        r#"{"policy":"ehc","kernel":"sweep","size":"2K","line":4,"trace":{"source":"profile","profile":"espresso"},"refs":50000}"#,
    );
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("ehc"), "{body}");
    assert!(body.contains("reference"), "{body}");
    assert!(body.contains("batch"), "{body}");

    server.shutdown();
    server.join();
}
