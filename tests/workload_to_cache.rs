//! Integration: properties of the synthetic workloads that the experiments
//! depend on, observed through the cache substrate.

use dynex_cache::{run, CacheConfig, DirectMapped, FullyAssociative, Replacement};
use dynex_trace::TraceStats;
use dynex_workload::spec;

#[test]
fn traces_are_bit_reproducible() {
    for name in spec::NAMES {
        let a = spec::profile(name).unwrap().trace(50_000);
        let b = spec::profile(name).unwrap().trace(50_000);
        assert_eq!(a, b, "{name}");
    }
}

#[test]
fn instruction_fractions_look_like_1992_risc_code() {
    // Pixie-era traces are ~70-98% instruction fetches depending on the
    // benchmark's data intensity.
    for name in spec::NAMES {
        let stats = TraceStats::from_accesses(spec::profile(name).unwrap().trace(100_000).iter());
        let frac = stats.instruction_fraction();
        assert!(
            (0.55..=0.995).contains(&frac),
            "{name}: instruction fraction {frac:.2}"
        );
    }
}

#[test]
fn footprint_ordering_matches_the_benchmark_suite() {
    // gcc and spice are the big-code benchmarks; the numeric kernels are
    // tiny; everything else is in between.
    let code = |n: &str| spec::profile(n).unwrap().program().code_bytes();
    assert!(code("gcc") > code("espresso"));
    assert!(code("spice") > code("li"));
    assert!(code("espresso") > code("mat300"));
    assert!(code("mat300") < 4 * 1024);
    assert!(code("tomcatv") < 8 * 1024);
}

#[test]
fn loops_dominate_conflicts_are_real() {
    // At a cache far larger than any footprint, instruction miss rates are
    // negligible (everything is loops); at a small cache the big benchmarks
    // conflict heavily.
    for name in ["gcc", "spice", "doduc"] {
        let trace = spec::profile(name).unwrap().trace(500_000);
        let instr: Vec<_> = dynex_trace::filter::instructions(trace.iter()).collect();

        let huge = CacheConfig::direct_mapped(1 << 21, 4).unwrap();
        let mut big_cache = DirectMapped::new(huge);
        let big = run(&mut big_cache, instr.iter().copied());
        assert!(
            big.miss_rate() < 0.05,
            "{name}: 2MB cache should hold the whole program, rate {:.4}",
            big.miss_rate()
        );

        let small = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
        let mut small_cache = DirectMapped::new(small);
        let tight = run(&mut small_cache, instr.iter().copied());
        assert!(
            tight.miss_rate() > 0.03,
            "{name}: 4KB cache should conflict, rate {:.4}",
            tight.miss_rate()
        );
    }
}

#[test]
fn fixable_conflict_misses_exist_at_mid_sizes() {
    // The whole premise of the paper: at mid sizes a meaningful share of the
    // direct-mapped misses are removable by a better per-line replacement
    // decision — exactly what the optimal DM cache measures.
    let trace = spec::profile("doduc").unwrap().trace(1_000_000);
    let instr: Vec<u32> = dynex_trace::filter::instructions(trace.iter())
        .map(|a| a.addr())
        .collect();

    let config = CacheConfig::direct_mapped(32 * 1024, 4).unwrap();
    let mut dm = DirectMapped::new(config);
    let dm_stats = run(
        &mut dm,
        instr.iter().map(|&a| dynex_trace::Access::fetch(a)),
    );
    let opt = dynex::OptimalDirectMapped::simulate(config, instr.iter().copied());

    assert!(
        dm_stats.misses() as f64 > 1.2 * opt.misses() as f64,
        "conflict headroom should exist: dm {} vs opt {}",
        dm_stats.misses(),
        opt.misses()
    );
}

#[test]
fn fully_associative_lru_can_lose_to_direct_mapped_on_phase_rotations() {
    // A documented property of the generated workloads (and of real cyclic
    // programs): LRU thrashes on working sets slightly above capacity, so
    // fully-associative LRU is not automatically the conflict-free
    // reference. This pins the behaviour so nobody "fixes" a test back to
    // the wrong premise.
    let trace = spec::profile("gcc").unwrap().trace(500_000);
    let instr: Vec<_> = dynex_trace::filter::instructions(trace.iter()).collect();
    let mut dm = DirectMapped::new(CacheConfig::direct_mapped(32 * 1024, 4).unwrap());
    let dm_stats = run(&mut dm, instr.iter().copied());
    let mut fa = FullyAssociative::new(32 * 1024, 4, Replacement::Lru).unwrap();
    let fa_stats = run(&mut fa, instr.iter().copied());
    // No ordering assertion either way — just that both simulate sanely.
    assert!(dm_stats.accesses() == fa_stats.accesses());
    assert!(dm_stats.misses() > 0 && fa_stats.misses() > 0);
}

#[test]
fn stack_traffic_stays_in_the_stack_segment() {
    let trace = spec::profile("li").unwrap().trace(200_000);
    for access in trace.iter().filter(|a| a.is_data()) {
        let addr = access.addr();
        let in_data = (0x1000_0000..0x4000_0000).contains(&addr);
        let in_stack = addr >= 0x7ff0_0000;
        assert!(in_data || in_stack, "stray data address {addr:#x}");
    }
}
