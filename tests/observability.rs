//! Integration: the observability layer never perturbs simulation, and the
//! exported JSONL/JSON/CSV artifacts round-trip back to the statistics the
//! simulators report.
//!
//! Three layers are covered:
//!
//! 1. **Differential** — every simulator produces byte-identical
//!    [`CacheStats`] with and without instrumentation, and the emitted
//!    events obey the structural invariants
//!    (`accesses == hits + misses == |Access events|`,
//!    `evictions <= misses`, DE: one exclusion decision per miss).
//! 2. **Library round-trip** — events/metrics written through
//!    [`dynex_obs::export`] parse back with [`dynex_obs::json`] and
//!    cross-check against the run's statistics.
//! 3. **CLI round-trip** — the `simcache` binary with `--events-out`,
//!    `--metrics-out`, `--intervals-out`, `--interval` emits well-formed
//!    files that agree with an in-process run of the same configuration.

use dynex::{DeCache, DeHierarchy, HitLastStrategy, LastLineDeCache, MultiStickyDeCache};
use dynex_cache::{
    run_addrs, CacheConfig, CacheSim, CacheStats, DirectMapped, Instrumented, Replacement,
    SetAssociative, SplitMix64, StreamBuffer, VictimCache,
};
use dynex_obs::json::{self, Json};
use dynex_obs::{export, Collector, CountingProbe, Event, EventCounts, EventLog, Probe};

/// A mixed workload: loop phases (the paper's bread and butter) with a
/// random-access tail, enough to exercise hits, cold misses, conflicts,
/// bypasses, and evictions.
fn workload() -> Vec<u32> {
    let mut addrs = Vec::new();
    // Phase 1: within-loop conflict (a b)^50 on one set.
    for i in 0..100u32 {
        addrs.push(if i % 2 == 0 { 0 } else { 256 });
    }
    // Phase 2: a sequential sweep larger than the small test caches.
    for i in 0..200u32 {
        addrs.push(i * 4);
    }
    // Phase 3: random accesses over a window.
    let mut rng = SplitMix64::new(42);
    for _ in 0..2000 {
        addrs.push((rng.below(512) as u32) * 4);
    }
    addrs
}

/// Runs `bare` and the `Instrumented` wrapper around `wrapped_inner` (built
/// identically) over the workload; asserts transparency and the Access-event
/// invariants.
fn assert_wrapper_transparent<S: CacheSim>(mut bare: S, wrapped_inner: S, config: CacheConfig) {
    let mut wrapped = Instrumented::new(wrapped_inner, config.geometry(), CountingProbe::new());
    for a in workload() {
        assert_eq!(
            bare.access(a),
            wrapped.access(a),
            "outcome diverged at {a:#x}"
        );
    }
    assert_eq!(
        bare.stats(),
        wrapped.stats(),
        "stats diverged for {}",
        bare.label()
    );
    assert_counts_match(wrapped.probe().counts(), wrapped.stats());
}

/// `accesses == hits + misses == |Access events|` and `evictions <= misses`.
fn assert_counts_match(counts: EventCounts, stats: CacheStats) {
    assert_eq!(counts.accesses, stats.accesses());
    assert_eq!(counts.hits, stats.hits());
    assert_eq!(counts.misses, stats.misses());
    assert_eq!(counts.hits + counts.misses, counts.accesses);
    assert!(
        counts.evictions <= counts.misses,
        "more evictions than misses"
    );
}

#[test]
fn instrumented_wrapper_is_transparent_for_every_simulator() {
    let small = CacheConfig::direct_mapped(256, 4).unwrap();
    assert_wrapper_transparent(DirectMapped::new(small), DirectMapped::new(small), small);
    assert_wrapper_transparent(DeCache::new(small), DeCache::new(small), small);
    assert_wrapper_transparent(
        LastLineDeCache::new(small),
        LastLineDeCache::new(small),
        small,
    );
    assert_wrapper_transparent(
        MultiStickyDeCache::new(small, 3),
        MultiStickyDeCache::new(small, 3),
        small,
    );
    assert_wrapper_transparent(
        VictimCache::new(small, 4),
        VictimCache::new(small, 4),
        small,
    );
    assert_wrapper_transparent(
        StreamBuffer::new(small, 4),
        StreamBuffer::new(small, 4),
        small,
    );

    let assoc = CacheConfig::new(256, 4, 2).unwrap();
    for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        assert_wrapper_transparent(
            SetAssociative::new(assoc, policy),
            SetAssociative::new(assoc, policy),
            assoc,
        );
    }

    let l2 = CacheConfig::direct_mapped(1024, 4).unwrap();
    for strategy in [
        HitLastStrategy::Hashed { bits_per_line: 4 },
        HitLastStrategy::AssumeHit,
        HitLastStrategy::AssumeMiss,
    ] {
        assert_wrapper_transparent(
            DeHierarchy::new(small, l2, strategy).unwrap(),
            DeHierarchy::new(small, l2, strategy).unwrap(),
            small,
        );
    }
}

#[test]
fn native_probes_preserve_stats_and_event_invariants() {
    let config = CacheConfig::direct_mapped(256, 4).unwrap();
    let addrs = workload();

    let mut bare = DirectMapped::new(config);
    let mut probed = DirectMapped::with_probe(config, CountingProbe::new());
    let bare_stats = run_addrs(&mut bare, addrs.iter().copied());
    let probed_stats = run_addrs(&mut probed, addrs.iter().copied());
    assert_eq!(bare_stats, probed_stats);
    assert_counts_match(probed.probe().counts(), probed_stats);

    let mut bare = DeCache::new(config);
    let mut probed = DeCache::with_probe(config, CountingProbe::new());
    let bare_stats = run_addrs(&mut bare, addrs.iter().copied());
    let probed_stats = run_addrs(&mut probed, addrs.iter().copied());
    assert_eq!(bare_stats, probed_stats);
    let counts = probed.probe().counts();
    assert_counts_match(counts, probed_stats);
    // Dynamic exclusion decides load-vs-bypass on every miss.
    assert_eq!(
        counts.exclusion_loads + counts.exclusion_bypasses,
        probed_stats.misses()
    );
    assert_eq!(counts.exclusion_loads, probed.de_stats().loads);
    assert_eq!(counts.exclusion_bypasses, probed.de_stats().bypasses);
    assert!(
        counts.evictions <= counts.exclusion_loads,
        "only loads can evict"
    );

    // The stream buffer is the one organization where evictions may exceed
    // misses: a reference served by the buffer is a *hit* that still
    // installs the line into the cache, displacing a valid block. The exact
    // relation is evictions <= misses + buffer-promotion hits.
    let mut bare = StreamBuffer::new(config, 4);
    let mut probed = StreamBuffer::with_probe(config, 4, EventLog::new());
    let bare_stats = run_addrs(&mut bare, addrs.iter().copied());
    let probed_stats = run_addrs(&mut probed, addrs.iter().copied());
    assert_eq!(bare_stats, probed_stats);
    let log = probed.into_probe();
    let mut promotions = 0u64;
    let mut evictions = 0u64;
    for event in log.events() {
        match event {
            Event::Access {
                cause: dynex_obs::Cause::StreamBuffer,
                ..
            } => promotions += 1,
            Event::Eviction { .. } => evictions += 1,
            _ => {}
        }
    }
    assert!(
        promotions > 0,
        "sequential phase must hit the stream buffer"
    );
    assert!(evictions <= probed_stats.misses() + promotions);
}

#[test]
fn events_jsonl_round_trips_against_stats() {
    let config = CacheConfig::direct_mapped(256, 4).unwrap();
    let mut cache = DeCache::with_probe(config, EventLog::new());
    let stats = run_addrs(&mut cache, workload());
    let log = cache.into_probe();

    let mut buf = Vec::new();
    export::write_events_jsonl(&mut buf, log.events()).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let (mut accesses, mut hits, mut misses, mut evictions, mut decisions) = (0u64, 0, 0, 0, 0);
    for line in text.lines() {
        let parsed = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        match parsed.get("type").and_then(Json::as_str) {
            Some("access") => {
                accesses += 1;
                match parsed.get("outcome").and_then(Json::as_str) {
                    Some("hit") => hits += 1,
                    Some("miss") => misses += 1,
                    other => panic!("bad outcome {other:?}"),
                }
            }
            Some("eviction") => evictions += 1,
            Some("exclusion") => decisions += 1,
            Some("sticky-flip") | Some("hit-last") => {}
            other => panic!("unknown event type {other:?}"),
        }
    }
    assert_eq!(accesses, stats.accesses());
    assert_eq!(hits, stats.hits());
    assert_eq!(misses, stats.misses());
    assert_eq!(decisions, stats.misses());
    assert!(evictions <= misses);
}

#[test]
fn metrics_json_round_trips_against_stats() {
    let config = CacheConfig::direct_mapped(256, 4).unwrap();
    let mut cache = DeCache::with_probe(config, Collector::new(100));
    let stats = run_addrs(&mut cache, workload());
    let collector = cache.into_probe();

    let doc = export::metrics_json(&collector.registry(), Some(collector.intervals()));
    let parsed = json::parse(&doc).unwrap();
    let counter = |name: &str| {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("accesses"), stats.accesses());
    assert_eq!(counter("hits"), stats.hits());
    assert_eq!(counter("misses"), stats.misses());
    assert_eq!(
        counter("exclusion-loads") + counter("exclusion-bypasses"),
        stats.misses()
    );

    // Completed interval windows partition a prefix of the access stream.
    assert_eq!(
        parsed.get("interval_window").and_then(Json::as_u64),
        Some(100)
    );
    let intervals = parsed.get("intervals").and_then(Json::as_array).unwrap();
    assert_eq!(intervals.len() as u64, stats.accesses() / 100);
    let (mut acc_sum, mut miss_sum) = (0u64, 0u64);
    for point in intervals {
        acc_sum += point.get("accesses").and_then(Json::as_u64).unwrap();
        miss_sum += point.get("misses").and_then(Json::as_u64).unwrap();
    }
    assert_eq!(acc_sum, stats.accesses() / 100 * 100);
    assert!(miss_sum <= stats.misses());

    // The histograms section must carry the reuse-distance histogram.
    let reuse = parsed
        .get("histograms")
        .and_then(|h| h.get("reuse-distance"))
        .expect("reuse-distance histogram exported");
    assert!(reuse.get("counts").and_then(Json::as_array).is_some());
}

#[test]
fn probes_compose_as_tuples() {
    let config = CacheConfig::direct_mapped(256, 4).unwrap();
    let mut cache = DeCache::with_probe(config, (Collector::new(100), CountingProbe::new()));
    let stats = run_addrs(&mut cache, workload());
    let (collector, counting) = cache.into_probe();
    assert_eq!(collector.registry().counter("accesses"), stats.accesses());
    assert_eq!(counting.counts().accesses, stats.accesses());
    assert_eq!(
        collector.registry().counter("evictions"),
        counting.counts().evictions
    );
}

#[test]
fn simcache_cli_writes_parseable_outputs() {
    // Build a small text trace on disk.
    let dir = std::env::temp_dir().join("dynex_obs_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.txt");
    let mut text = String::new();
    for addr in workload() {
        text.push_str(&format!("F {addr:#x}\n"));
    }
    std::fs::write(&trace_path, text).unwrap();

    let events_path = dir.join("events.jsonl");
    let metrics_path = dir.join("metrics.json");
    let intervals_path = dir.join("intervals.csv");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_simcache"))
        .arg(&trace_path)
        .args([
            "--size",
            "256",
            "--line",
            "4",
            "--org",
            "de",
            "--interval",
            "1000",
        ])
        .arg("--events-out")
        .arg(&events_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--intervals-out")
        .arg(&intervals_path)
        .output()
        .expect("simcache runs");
    assert!(
        output.status.success(),
        "simcache failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The expected statistics, from an identical in-process run.
    let config = CacheConfig::direct_mapped(256, 4).unwrap();
    let mut reference = DeCache::new(config);
    let stats = run_addrs(&mut reference, workload());

    // Events JSONL: every line parses; Access events match the stats.
    let events_text = std::fs::read_to_string(&events_path).unwrap();
    let mut accesses = 0u64;
    let mut misses = 0u64;
    for line in events_text.lines() {
        let parsed = json::parse(line).unwrap();
        if parsed.get("type").and_then(Json::as_str) == Some("access") {
            accesses += 1;
            if parsed.get("outcome").and_then(Json::as_str) == Some("miss") {
                misses += 1;
            }
        }
    }
    assert_eq!(accesses, stats.accesses());
    assert_eq!(misses, stats.misses());

    // Metrics JSON: counters agree with the stats.
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let metrics = json::parse(metrics_text.trim()).unwrap();
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(
        counters.get("accesses").and_then(Json::as_u64),
        Some(stats.accesses())
    );
    assert_eq!(
        counters.get("misses").and_then(Json::as_u64),
        Some(stats.misses())
    );
    assert_eq!(
        metrics.get("interval_window").and_then(Json::as_u64),
        Some(1000)
    );

    // Intervals CSV: header plus one row per window (incl. trailing
    // partial); access column sums to the trace length.
    let csv_text = std::fs::read_to_string(&intervals_path).unwrap();
    let mut lines = csv_text.lines();
    assert_eq!(
        lines.next(),
        Some("interval,start,accesses,misses,miss_rate")
    );
    let mut acc_sum = 0u64;
    for row in lines {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 5, "bad CSV row {row:?}");
        acc_sum += fields[2].parse::<u64>().unwrap();
    }
    assert_eq!(acc_sum, stats.accesses());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn noop_probe_accepts_every_event_kind() {
    // The default probe is exercised implicitly everywhere; this pins the
    // API shape so `emit` stays callable with each variant.
    let mut noop = dynex_obs::NoopProbe;
    noop.emit(Event::StickyFlip {
        set: 0,
        sticky: true,
    });
    noop.emit(Event::HitLastUpdate {
        line: 1,
        hit_last: false,
    });
    noop.emit(Event::ExclusionDecision {
        set: 0,
        line: 1,
        loaded: true,
    });
    noop.emit(Event::Eviction {
        set: 0,
        victim: 1,
        replacement: 2,
    });
}
