//! Integration: the Section 3 analytic results hold end to end, from the
//! pattern generators in `dynex-workload` through the simulators in
//! `dynex-core`, at every cache size where the blocks conflict.

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{run, CacheConfig, CacheSim, DirectMapped};
use dynex_workload::patterns;

fn misses<C: CacheSim>(mut cache: C, trace: &dynex_trace::Trace) -> u64 {
    run(&mut cache, trace.iter()).misses()
}

#[test]
fn conflict_between_loops_is_already_optimal_for_dm() {
    // (a^10 b^10)^10: conventional and optimal both 10%.
    for size in [64u32, 1024, 32 * 1024] {
        let config = CacheConfig::direct_mapped(size, 4).unwrap();
        let (a, b) = patterns::conflicting_pair(size);
        let trace = patterns::conflict_between_loops(a, b, 10, 10);
        assert_eq!(misses(DirectMapped::new(config), &trace), 20, "size {size}");
        assert_eq!(
            OptimalDirectMapped::simulate(config, trace.iter().map(|x| x.addr())).misses(),
            20
        );
        // DE: within two misses of optimal from cold state.
        let de = misses(DeCache::new(config), &trace);
        assert!((20..=22).contains(&de), "size {size}: de {de}");
    }
}

#[test]
fn loop_level_conflict_de_excludes_the_interrupting_block() {
    // (a^10 b)^10: DM 18%, OPT 10%, DE = OPT from cold state.
    let config = CacheConfig::direct_mapped(1024, 4).unwrap();
    let (a, b) = patterns::conflicting_pair(1024);
    let trace = patterns::conflict_between_loop_levels(a, b, 10, 10);
    assert_eq!(misses(DirectMapped::new(config), &trace), 20); // 18.2%
    assert_eq!(
        OptimalDirectMapped::simulate(config, trace.iter().map(|x| x.addr())).misses(),
        11
    );
    assert_eq!(misses(DeCache::new(config), &trace), 11);
}

#[test]
fn within_loop_conflict_de_halves_misses() {
    // (a b)^50: DM 100%, OPT/DE keep one block.
    let config = CacheConfig::direct_mapped(4096, 4).unwrap();
    let (a, b) = patterns::conflicting_pair(4096);
    let trace = patterns::conflict_within_loop(a, b, 50);
    assert_eq!(misses(DirectMapped::new(config), &trace), 100);
    assert_eq!(
        OptimalDirectMapped::simulate(config, trace.iter().map(|x| x.addr())).misses(),
        51
    );
    assert_eq!(misses(DeCache::new(config), &trace), 51);
}

#[test]
fn three_way_loop_needs_multiple_sticky_levels() {
    let config = CacheConfig::direct_mapped(64, 4).unwrap();
    let (a, b) = patterns::conflicting_pair(64);
    let trace = patterns::three_way_loop(a, b, b + 64, 50);
    // Single bit: misses everything, like the conventional cache.
    assert_eq!(misses(DirectMapped::new(config), &trace), 150);
    assert_eq!(misses(DeCache::new(config), &trace), 150);
    // Two levels lock one block in.
    let de2 = misses(dynex::MultiStickyDeCache::new(config, 2), &trace);
    assert_eq!(de2, 3 + 49 * 2, "a hits every round after warmup");
    // And the optimal cache is at least as good.
    let opt = OptimalDirectMapped::simulate(config, trace.iter().map(|x| x.addr())).misses();
    assert!(opt <= de2);
}

#[test]
fn patterns_respect_the_conflict_guarantee() {
    // conflicting_pair must conflict at the size it was built for and all
    // smaller sizes (b's address is a multiple of every smaller power of
    // two).
    for size in [64u32, 256, 4096, 32 * 1024] {
        let (a, b) = patterns::conflicting_pair(size);
        for smaller in [size, size / 2, size / 4] {
            let geometry = CacheConfig::direct_mapped(smaller.max(64), 4)
                .unwrap()
                .geometry();
            assert_eq!(
                geometry.set_of_addr(a),
                geometry.set_of_addr(b),
                "pair for {size} must conflict at {smaller}"
            );
        }
    }
}
