//! Integration: the paper's headline quantitative claims, verified against
//! the synthetic SPEC'89 suite at a reduced reference budget (the full-scale
//! numbers live in EXPERIMENTS.md).
//!
//! These assertions check *shape*, not absolute values: who wins, roughly by
//! how much, and where the effect disappears.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{run_addrs, CacheConfig, DirectMapped};
use dynex_engine::{default_jobs, execute};
use dynex_trace::filter;
use dynex_workload::spec;

const REFS: usize = 2_000_000;

/// Every benchmark's instruction stream, generated once per process: the
/// tests in this file sweep many cache configurations over the same traces,
/// and regenerating 2M references per (test, config) dominated the suite's
/// runtime.
fn instr_addrs(name: &str) -> &'static [u32] {
    static TRACES: OnceLock<HashMap<&'static str, Vec<u32>>> = OnceLock::new();
    TRACES
        .get_or_init(|| {
            let traces = execute(&spec::NAMES, default_jobs(), |name| {
                let p = spec::profile(name).expect("built-in profile");
                filter::instructions(p.trace(REFS).iter())
                    .map(|a| a.addr())
                    .collect::<Vec<u32>>()
            });
            spec::NAMES.iter().copied().zip(traces).collect()
        })
        .get(name)
        .expect("built-in profile")
}

type RateCache = OnceLock<Mutex<HashMap<(u32, u32), (f64, f64, f64)>>>;

fn avg_rates(size: u32, line: u32) -> (f64, f64, f64) {
    // Memoized: the line-size sweep revisits configurations other tests
    // already measured, and the result is deterministic.
    static RATES: RateCache = OnceLock::new();
    if let Some(&hit) = RATES
        .get_or_init(Mutex::default)
        .lock()
        .unwrap()
        .get(&(size, line))
    {
        return hit;
    }

    let config = CacheConfig::direct_mapped(size, line).unwrap();
    // One engine job per benchmark; summing in plan order keeps the float
    // accumulation identical to a serial loop.
    let per_bench = execute(&spec::NAMES, default_jobs(), |name| {
        let addrs = instr_addrs(name);
        let mut dm = DirectMapped::new(config);
        let dm_rate = run_addrs(&mut dm, addrs.iter().copied()).miss_rate_percent();
        let (de_rate, opt_rate) = if line == 4 {
            let mut de = DeCache::new(config);
            (
                run_addrs(&mut de, addrs.iter().copied()).miss_rate_percent(),
                OptimalDirectMapped::simulate(config, addrs.iter().copied()).miss_rate_percent(),
            )
        } else {
            let mut de = LastLineDeCache::new(config);
            (
                run_addrs(&mut de, addrs.iter().copied()).miss_rate_percent(),
                OptimalDirectMapped::simulate_with_lastline(config, addrs.iter().copied())
                    .miss_rate_percent(),
            )
        };
        (dm_rate, de_rate, opt_rate)
    });
    let (mut dm_a, mut de_a, mut opt_a) = (0.0, 0.0, 0.0);
    for (dm, de, opt) in per_bench {
        dm_a += dm;
        de_a += de;
        opt_a += opt;
    }
    let n = spec::NAMES.len() as f64;
    let rates = (dm_a / n, de_a / n, opt_a / n);
    RATES
        .get_or_init(Mutex::default)
        .lock()
        .unwrap()
        .insert((size, line), rates);
    rates
}

/// Abstract claim: "simulation results show an average reduction in miss
/// rate of ~33% for a 32KB instruction cache with 16B lines."
#[test]
fn headline_reduction_at_32kb_16b_lines() {
    let (dm, de, opt) = avg_rates(32 * 1024, 16);
    let reduction = (dm - de) / dm * 100.0;
    assert!(
        reduction > 20.0,
        "expected a substantial average reduction (paper: 33%), got {reduction:.1}%"
    );
    assert!(opt <= de + 1e-9, "optimal bounds DE");
}

/// Figure 5: the improvement at 32KB with 4B lines is near its peak
/// (paper: 37%), and the large-cache end of the sweep collapses toward zero
/// (programs fit, no conflicts left to remove).
#[test]
fn improvement_peaks_mid_size_and_vanishes_when_programs_fit() {
    let (dm32, de32, _) = avg_rates(32 * 1024, 4);
    let red32 = (dm32 - de32) / dm32 * 100.0;
    assert!(
        red32 > 25.0,
        "expected near-peak reduction at 32KB, got {red32:.1}%"
    );

    let (dm128, de128, _) = avg_rates(128 * 1024, 4);
    let red128 = (dm128 - de128) / dm128 * 100.0;
    assert!(
        red128 < red32 / 2.0,
        "reduction must collapse at 128KB: {red128:.1}% vs {red32:.1}%"
    );
}

/// Figure 3's qualitative claim: "all the benchmarks with a high instruction
/// cache miss rate show a significant improvement", while the near-zero-miss
/// numeric kernels are unaffected (at worst a negligible cold-start wiggle).
#[test]
fn high_miss_benchmarks_improve_low_miss_ones_unaffected() {
    let config = CacheConfig::direct_mapped(32 * 1024, 4).unwrap();
    let mut improved = 0;
    for name in spec::NAMES {
        let addrs = instr_addrs(name);
        let mut dm = DirectMapped::new(config);
        let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
        let mut de = DeCache::new(config);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        if dm_stats.miss_rate_percent() > 5.0 {
            let red = de_stats.percent_reduction_vs(&dm_stats);
            assert!(
                red > 10.0,
                "{name}: high-miss benchmark should improve, got {red:.1}%"
            );
            improved += 1;
        }
        if dm_stats.miss_rate_percent() < 0.05 {
            // Tiny kernels: DE may add a handful of cold-start misses, never
            // a meaningful regression.
            assert!(
                de_stats.misses() <= dm_stats.misses() + dm_stats.accesses() / 1000,
                "{name}: low-miss benchmark regressed"
            );
        }
    }
    assert!(improved >= 2, "the suite must contain high-miss benchmarks");
}

/// Figure 11's qualitative claim: miss rates fall with line size (spatial
/// locality) while DE keeps a substantial edge at every line size.
#[test]
fn line_size_sweep_preserves_de_edge() {
    let mut last_dm = f64::MAX;
    for line in [4u32, 16, 64] {
        let (dm, de, _) = avg_rates(32 * 1024, line);
        assert!(dm < last_dm, "average miss rate falls with line size");
        last_dm = dm;
        let red = (dm - de) / dm * 100.0;
        assert!(red > 15.0, "line {line}: reduction {red:.1}% too small");
    }
}

/// The optimal cache is a true lower bound on every benchmark and size we
/// report.
#[test]
fn optimal_bounds_everything_everywhere() {
    for size in [8 * 1024u32, 32 * 1024] {
        let config = CacheConfig::direct_mapped(size, 4).unwrap();
        for name in ["gcc", "fpppp", "mat300"] {
            let addrs = instr_addrs(name);
            let opt = OptimalDirectMapped::simulate(config, addrs.iter().copied());
            let mut dm = DirectMapped::new(config);
            let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
            let mut de = DeCache::new(config);
            let de_stats = run_addrs(&mut de, addrs.iter().copied());
            assert!(opt.misses() <= dm_stats.misses(), "{name} at {size}");
            assert!(opt.misses() <= de_stats.misses(), "{name} at {size}");
        }
    }
}
