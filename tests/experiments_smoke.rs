//! Integration: every experiment runs end to end on a reduced budget and
//! produces a structurally sane table (the full-budget numbers are recorded
//! in EXPERIMENTS.md).

use std::sync::OnceLock;

use dynex_experiments::{figures, Workloads};

fn workloads() -> &'static Workloads {
    // Small but non-trivial: enough for warm loops on the small benchmarks.
    // Generated once per process — every test reads the same bundle.
    static BUNDLE: OnceLock<Workloads> = OnceLock::new();
    BUNDLE.get_or_init(|| Workloads::generate(30_000))
}

#[test]
fn every_experiment_produces_a_table() {
    let w = workloads();
    for id in figures::ALL_IDS {
        let table = figures::run(id, w).unwrap_or_else(|| panic!("{id} missing"));
        assert!(table.n_rows() > 0, "{id}: empty table");
        assert!(!table.title().is_empty(), "{id}: missing title");
        // For the figures whose non-key columns are all numeric, every cell
        // must parse (done here rather than in a second test so each
        // experiment runs once per suite).
        if ["fig4", "fig11", "fig14"].contains(&id) {
            for row in 0..table.n_rows() {
                for col in 1..table.headers().len() {
                    let cell = table.cell(row, col).unwrap();
                    assert!(
                        cell.parse::<f64>().is_ok(),
                        "{id} cell ({row},{col}) not numeric: {cell:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn csv_files_are_written() {
    let w = workloads();
    let dir = std::env::temp_dir().join("dynex_smoke_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let table = figures::run("fig3", w).unwrap();
    let path = dir.join("fig3.csv");
    table.save_csv(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().count() == table.n_rows() + 1);
    assert!(text.starts_with("benchmark,"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn section3_table_is_budget_independent() {
    // The pattern experiment uses exact sequences, not the workload bundle:
    // identical at any budget.
    let a = figures::patterns();
    let b = figures::run("patterns", workloads()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn fig2_reports_the_requested_budget() {
    let w = Workloads::generate(12_345);
    let table = figures::run("fig2", &w).unwrap();
    for row in 0..table.n_rows() {
        assert_eq!(table.cell(row, 2), Some("12345"));
    }
}
