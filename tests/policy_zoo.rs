//! Policy-zoo compatibility wall (PR 10): the `PolicyKind` redesign must
//! not move a single byte of the existing dm/de/opt surface.
//!
//! * Journals recorded *before* the redesign (when the wire field was
//!   spelled `org` and `CacheStats` had no traffic counters) replay
//!   byte-identically: same content keys, same labels, same statistics.
//! * The `ehc` content key is pinned to an exact string, so a request
//!   journaled today replays in every future session.
//! * Unknown policies and declared-unsupported kernel/policy combinations
//!   fail with loud structured errors that name the supported set — never a
//!   panic, never a silent fallback.
//! * The wire format round-trips through the new `policy` field and still
//!   accepts the legacy `org` spelling.

use dynex_experiments::api::{
    self, verify_key_schema, ApiError, SimulationRequest, POLICY_CHOICES,
};

/// Journal lines captured from a pre-PR-10 build (wire field `org`, no
/// traffic counters) for `--profile gcc --refs 20000 --size 1K --line 4`
/// under each of the original three policies. The keys, labels, counters,
/// and checksums are the exact bytes that build wrote.
const PRE_PR10_JOURNAL: &str = concat!(
    r#"{"key":"4411b20ebbcf04f8","value":{"label":"1KB direct-mapped, 4B lines (conventional)","accesses":20000,"misses":14703},"sum":"d50ef1f7c32799cc"}"#,
    "\n",
    r#"{"key":"0ee12acd2bb26530","value":{"label":"1KB direct-mapped, 4B lines (dynamic exclusion)","accesses":20000,"misses":7946,"loads":759,"bypasses":7187},"sum":"50ed054357467236"}"#,
    "\n",
);

fn fixture_request(policy: &str, journal: &std::path::Path) -> SimulationRequest {
    let mut b = SimulationRequest::builder();
    b.policy(policy)
        .size("1K")
        .line(4)
        .profile("gcc")
        .refs(20_000)
        .jobs(1)
        .resume(journal);
    b.build().expect("valid request")
}

#[test]
fn pre_pr10_journal_replays_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dynex-policy-zoo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("pre_pr10.jsonl");
    std::fs::write(&journal, PRE_PR10_JOURNAL).unwrap();

    let expected = [
        (
            "dm",
            "4411b20ebbcf04f8",
            "1KB direct-mapped, 4B lines (conventional)",
            14_703u64,
        ),
        (
            "de",
            "0ee12acd2bb26530",
            "1KB direct-mapped, 4B lines (dynamic exclusion)",
            7_946,
        ),
        ("opt", "b3f2f6892bb817c0", "optimal direct-mapped", 7_715),
    ];
    for (policy, key, label, misses) in expected {
        let request = fixture_request(policy, &journal);
        api::install_session(&request).unwrap();
        let response = api::run(&request).unwrap();
        dynex_engine::set_global_journal(None);
        // dm and de were journaled by the old build; opt's fixture line is
        // deliberately absent above so it simulates fresh — either way the
        // content key and payload must be exactly what that build produced.
        assert_eq!(response.key, key, "{policy}: content key moved");
        assert_eq!(response.label, label, "{policy}");
        assert_eq!(response.stats.accesses(), 20_000, "{policy}");
        assert_eq!(response.stats.misses(), misses, "{policy}");
        if policy == "dm" || policy == "de" {
            assert!(response.cached, "{policy}: pre-PR journal entry must replay");
        }
        // Replayed legacy entries carry no traffic counters.
        assert_eq!(response.stats.fills(), 0, "{policy}");
        assert_eq!(response.stats.probes(), 0, "{policy}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ehc_content_key_is_stable_across_sessions() {
    let request = {
        let mut b = SimulationRequest::builder();
        b.policy("ehc")
            .size("1K")
            .line(4)
            .profile("gcc")
            .refs(20_000)
            .jobs(1);
        b.build().unwrap()
    };
    let trace = api::load(&request).unwrap();
    let key = request.content_key(&trace.addrs).unwrap();
    // Golden key: journaled EHC results must replay in every future
    // session. If this assertion fires, the key schema broke compatibility.
    assert_eq!(key, "d64d548858b68721");
}

#[test]
fn unknown_policy_is_a_loud_structured_error() {
    let mut b = SimulationRequest::builder();
    b.policy("lru");
    let err = b.build().expect_err("unknown policy must not build");
    match &err {
        ApiError::Invalid { field, message } => {
            assert_eq!(*field, "--policy");
            assert!(message.contains("lru"), "{message}");
            assert!(message.contains(POLICY_CHOICES), "{message}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("--policy"), "{rendered}");
}

#[test]
fn unsupported_kernel_combo_is_a_loud_structured_error() {
    // ehc and bwcost declare no sweep-kernel support; requesting the combo
    // through the full request API must fail with the capability error that
    // names the kernels that *do* work — never a panic or a silent
    // reference fallback.
    for policy in ["ehc", "bwcost"] {
        let mut b = SimulationRequest::builder();
        b.policy(policy)
            .size("1K")
            .line(4)
            .profile("gcc")
            .refs(5_000)
            .jobs(1)
            .kernel("sweep");
        let request = b.build().unwrap();
        let err = api::run(&request).expect_err("sweep kernel has no ehc/bwcost path");
        let message = err.to_string();
        assert!(message.contains(policy), "{message}");
        assert!(message.contains("sweep"), "{message}");
        assert!(message.contains("reference"), "{message}");
        assert!(message.contains("batch"), "{message}");
    }
}

#[test]
fn zoo_policies_run_end_to_end_and_kernels_agree() {
    // The full request path (SimulationRequest -> execute -> kernel) for
    // the two new zoo members, under every supporting kernel: identical
    // statistics and content keys.
    for policy in ["ehc", "bwcost"] {
        let mut responses = Vec::new();
        for kernel in ["reference", "batch"] {
            let mut b = SimulationRequest::builder();
            b.policy(policy)
                .size("1K")
                .line(4)
                .profile("gcc")
                .refs(20_000)
                .jobs(1)
                .kernel(kernel);
            let request = b.build().unwrap();
            let trace = api::load(&request).unwrap();
            responses.push(api::execute(&request, &trace).unwrap());
        }
        assert_eq!(responses[0].stats, responses[1].stats, "{policy}");
        assert_eq!(responses[0].key, responses[1].key, "{policy}");
        assert_eq!(responses[0].label, responses[1].label, "{policy}");
        // The zoo driver accounts traffic: one probe per access.
        assert_eq!(responses[0].stats.probes(), 20_000, "{policy}");
    }
}

#[test]
fn wire_format_prefers_policy_and_accepts_legacy_org() {
    let mut b = SimulationRequest::builder();
    b.policy("ehc").size("2K").line(4).profile("gcc").refs(5_000).jobs(1);
    let request = b.build().unwrap();

    // The new wire format spells the field `policy`.
    let json = request.to_json();
    assert!(json.contains(r#""policy":"ehc""#), "{json}");
    assert!(!json.contains(r#""org":"#), "{json}");
    let round = SimulationRequest::from_json(&json).unwrap();
    assert_eq!(round, request);
    verify_key_schema(&round).expect("key schema covers the policy field");

    // A pre-PR-10 client sending `org` still parses to the same request.
    let legacy = json.replace(r#""policy":"ehc""#, r#""org":"ehc""#);
    let from_legacy = SimulationRequest::from_json(&legacy).unwrap();
    assert_eq!(from_legacy, request);

    // When both are present, the new spelling wins.
    let both = json.replace(r#""policy":"ehc""#, r#""policy":"ehc","org":"dm""#);
    let from_both = SimulationRequest::from_json(&both).unwrap();
    assert_eq!(from_both, request);
}
