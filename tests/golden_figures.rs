//! Golden-file regression tests: reduced-budget figure sweeps against
//! committed CSVs in `results/golden/`.
//!
//! The batch kernel (PR 4) made the simulation path swappable, and the
//! sweep kernel (PR 9) made whole figure plans ride one traversal; these
//! goldens pin the *numbers* so a kernel change can never silently move the
//! paper's figures. Each test renders a figure at a fixed small reference
//! budget under **all three** kernels (reference, batch, sweep) and
//! compares the CSV bytes to the committed golden — a regression in any
//! kernel, the workload generator, or the table renderer fails loudly.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! DYNEX_BLESS=1 cargo test -p dynex-experiments --test golden_figures
//! ```
//!
//! and commit the updated files under `results/golden/`.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use dynex_cache::Kernel;
use dynex_engine::{set_default_jobs, set_default_kernel};
use dynex_experiments::{figures, Workloads};

/// Reference budget for the goldens: small enough to run in seconds, large
/// enough that every workload's loop structure shows up in the numbers.
const GOLDEN_REFS: usize = 12_000;

fn workloads() -> &'static Workloads {
    static WORKLOADS: OnceLock<Workloads> = OnceLock::new();
    WORKLOADS.get_or_init(|| Workloads::generate(GOLDEN_REFS))
}

/// Serializes the kernel/jobs global flips within this binary.
fn lock_globals() -> MutexGuard<'static, ()> {
    static GLOBALS: Mutex<()> = Mutex::new(());
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(format!("{id}.csv"))
}

fn render(id: &str, kernel: Kernel) -> Vec<u8> {
    set_default_kernel(kernel);
    // Goldens are worker-count-independent by the engine's determinism
    // contract; pin jobs=1 anyway so a determinism bug cannot masquerade as
    // a numeric change.
    set_default_jobs(1);
    let table = figures::run(id, workloads()).expect("known figure id");
    set_default_kernel(Kernel::default());
    set_default_jobs(0);
    let mut bytes = Vec::new();
    table.write_csv(&mut bytes).expect("in-memory CSV render");
    bytes
}

fn check_golden(id: &str) {
    let _guard = lock_globals();
    let path = golden_path(id);
    let batch = render(id, Kernel::Batch);
    let reference = render(id, Kernel::Reference);
    assert_eq!(
        batch, reference,
        "{id}: kernels disagree at the golden budget"
    );
    let sweep = render(id, Kernel::Sweep);
    assert_eq!(
        batch, sweep,
        "{id}: sweep kernel disagrees at the golden budget"
    );

    if std::env::var_os("DYNEX_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent")).unwrap();
        std::fs::write(&path, &batch).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{id}: cannot read golden {} ({e}); regenerate with \
             `DYNEX_BLESS=1 cargo test -p dynex-experiments --test golden_figures` \
             and commit the result",
            path.display()
        )
    });
    assert_eq!(
        batch,
        golden,
        "{id}: figure output moved from the committed golden {}; if the change \
         is intentional, regenerate with `DYNEX_BLESS=1 cargo test -p \
         dynex-experiments --test golden_figures` and commit it",
        path.display()
    );
}

#[test]
fn fig2_matches_golden() {
    check_golden("fig2");
}

#[test]
fn fig7_matches_golden() {
    check_golden("fig7");
}

#[test]
fn fig12_matches_golden() {
    check_golden("fig12");
}

#[test]
fn fig5_matches_golden() {
    // The headline multi-size sweep — the sweep kernel's primary target.
    check_golden("fig5");
}

#[test]
fn ablate_sticky_matches_golden() {
    check_golden("ablate-sticky");
}

#[test]
fn ehc_matches_golden() {
    // PR 10 policy zoo: the Expected-Hit-Count headline comparison. The
    // sweep kernel has no EHC fast path, so this also pins the declared
    // reference fallback to the same bytes.
    check_golden("ehc");
}

#[test]
fn bwcost_matches_golden() {
    // PR 10 policy zoo: the bandwidth-cost comparison, pinning the
    // fills/writebacks/probes accounting across kernels.
    check_golden("bwcost");
}
