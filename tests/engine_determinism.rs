//! Integration: the sweep engine's two parallelism axes are deterministic.
//!
//! * Plan-level parallelism: a figure-style sweep produces bit-identical
//!   `Triple`s — and byte-identical exported JSONL — for every worker count.
//! * Set-level parallelism: sharding one trace by set index and merging the
//!   shard statistics reproduces the serial run exactly, on the paper's
//!   Section 3 loop patterns and on random traces, for DM, DE, and OPT.

use dynex_cache::{CacheConfig, CacheStats, SplitMix64};
use dynex_engine::{execute, shard_by_set, sharded_policy_stats, Job, PolicyKind, SweepPlan};
use dynex_experiments::{triple, triples_to_jsonl, Triple, Workloads};
use dynex_workload::patterns;

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn random_trace(seed: u64, len: usize, span: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| (rng.below(span) as u32) * 4).collect()
}

#[test]
fn figure_sweep_triples_identical_for_every_worker_count() {
    let workloads = Workloads::generate(4_000);
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(name, _)| workloads.instr_addrs(name))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for kb in [1u32, 4, 16] {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).unwrap();
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }

    let serial: Vec<Triple> = points.iter().map(|&(c, a)| triple(c, a)).collect();
    for jobs in JOB_COUNTS {
        let parallel = execute(&points, jobs, |&(c, a)| triple(c, a));
        assert_eq!(parallel, serial, "jobs={jobs}");
    }
}

#[test]
fn exported_jsonl_is_byte_identical_for_every_worker_count() {
    let workloads = Workloads::generate(3_000);
    let config = CacheConfig::direct_mapped(8 * 1024, 4).unwrap();
    let names: Vec<&str> = workloads.iter().map(|(name, _)| name).collect();
    let traces: Vec<Vec<u32>> = names.iter().map(|n| workloads.instr_addrs(n)).collect();

    let jsonl_at = |jobs: usize| {
        let results = execute(&traces, jobs, |t| triple(config, t));
        triples_to_jsonl(names.iter().copied().zip(results.iter()))
    };
    let serial = jsonl_at(1);
    assert_eq!(serial.lines().count(), names.len());
    for jobs in JOB_COUNTS {
        assert_eq!(jsonl_at(jobs), serial, "jobs={jobs}");
    }
}

#[test]
fn sweep_plan_of_jobs_is_deterministic() {
    let trace = random_trace(11, 20_000, 4_096);
    let mut plan = SweepPlan::new();
    for kb in [1u32, 2, 4, 8, 16] {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).unwrap();
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            plan.push(Job::new(config, policy));
        }
    }
    let serial: Vec<CacheStats> = plan.run(1, |job| job.run(&trace).unwrap());
    for jobs in JOB_COUNTS {
        assert_eq!(
            plan.run(jobs, |job| job.run(&trace).unwrap()),
            serial,
            "jobs={jobs}"
        );
    }
}

#[test]
fn section3_loop_patterns_shard_exactly() {
    // The paper's Section 3 conflict patterns, at a size where the two
    // blocks collide; sharding must not change a single count.
    let size = 1024u32;
    let config = CacheConfig::direct_mapped(size, 4).unwrap();
    let (a, b) = patterns::conflicting_pair(size);
    let traces = [
        patterns::conflict_between_loops(a, b, 10, 10),
        patterns::conflict_between_loop_levels(a, b, 10, 10),
        patterns::conflict_within_loop(a, b, 50),
        patterns::three_way_loop(a, b, b + size, 25),
    ];
    for (i, trace) in traces.iter().enumerate() {
        let addrs: Vec<u32> = trace.iter().map(|x| x.addr()).collect();
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            let serial = policy.simulate(config, &addrs).unwrap();
            for shards in [2usize, 4, 8] {
                for jobs in JOB_COUNTS {
                    assert_eq!(
                        sharded_policy_stats(config, policy, &addrs, shards, jobs),
                        serial,
                        "pattern {i}, {} with {shards} shards, {jobs} jobs",
                        policy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn random_traces_shard_exactly() {
    let config = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
    for seed in [1u64, 2, 3] {
        let addrs = random_trace(seed, 30_000, 8 * 1024);
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            let serial = policy.simulate(config, &addrs).unwrap();
            for shards in [2usize, 7, 32] {
                assert_eq!(
                    sharded_policy_stats(config, policy, &addrs, shards, 4),
                    serial,
                    "seed {seed}, {} with {shards} shards",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn shards_partition_the_trace() {
    let config = CacheConfig::direct_mapped(1024, 4).unwrap();
    let addrs = random_trace(9, 10_000, 2_048);
    for shards in [1usize, 3, 16] {
        let parts = shard_by_set(config.geometry(), &addrs, shards);
        assert_eq!(parts.len(), shards);
        assert_eq!(
            parts.iter().map(Vec::len).sum::<usize>(),
            addrs.len(),
            "{shards} shards"
        );
    }
}
