//! The differential-testing wall for the batch simulation kernel.
//!
//! The `--kernel batch` fast path is only admissible because it is
//! **bit-identical** to the reference simulators. This suite holds that line
//! along every axis the drivers expose:
//!
//! * `CacheStats` (and DE load/bypass counters) for every built-in workload
//!   profile across a grid of cache sizes and line sizes,
//! * the fused dm+de+opt triple against three separate reference runs,
//! * probe event streams and interval-series CSV bytes,
//! * figure CSV output with the kernel and worker count flipped through the
//!   session globals, at `--jobs 1` and `--jobs 4`.
//!
//! Tests that flip the session-wide kernel/jobs globals serialize behind
//! [`GLOBALS`] and restore the defaults before releasing it, so the rest of
//! the binary never observes a half-flipped session (this is also why the
//! suite is safe under `cargo test`'s default parallel threading).

use std::sync::{Mutex, MutexGuard, OnceLock};

use dynex::DeCache;
use dynex_cache::{
    batch_de, batch_de_probed, batch_triple, run_addrs, CacheConfig, Kernel, SplitMix64,
};
use dynex_engine::{execute, set_default_jobs, set_default_kernel, sharded_policy_stats, Policy};
use dynex_experiments::api::run_triple;
use dynex_experiments::{figures, Workloads};
use dynex_obs::{export, Collector, EventLog};

/// Shared reduced-budget workloads (every built-in profile).
fn workloads() -> &'static Workloads {
    static WORKLOADS: OnceLock<Workloads> = OnceLock::new();
    WORKLOADS.get_or_init(|| Workloads::generate(6_000))
}

/// Serializes tests that mutate the session globals (default kernel, default
/// jobs); the guard restores the defaults on drop via the explicit calls at
/// the end of each test body.
fn lock_globals() -> MutexGuard<'static, ()> {
    static GLOBALS: Mutex<()> = Mutex::new(());
    // A poisoned lock only means another test failed while holding it; the
    // globals are self-restoring (every path below resets them), so continue.
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

const SIZES: [u32; 3] = [1024, 8 * 1024, 32 * 1024];
const LINES: [u32; 2] = [4, 16];

/// Every workload profile × size × line × policy: batch == reference, and
/// the fused triple == three reference runs. This is the acceptance-criteria
/// grid.
#[test]
fn every_profile_and_geometry_is_bit_identical_across_kernels() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    for name in &names {
        let addrs = workloads.instr_addrs(name);
        for size in SIZES {
            for line in LINES {
                let config = CacheConfig::direct_mapped(size, line).unwrap();
                for policy in [
                    Policy::DirectMapped,
                    Policy::DynamicExclusion,
                    Policy::OptimalDm,
                ] {
                    assert_eq!(
                        policy.simulate_kernel(Kernel::Batch, config, &addrs),
                        policy.simulate_kernel(Kernel::Reference, config, &addrs),
                        "{name}: {} @ {config}",
                        policy.name()
                    );
                }
                assert_eq!(
                    run_triple(Kernel::Batch, config, &addrs),
                    run_triple(Kernel::Reference, config, &addrs),
                    "{name}: fused triple @ {config}"
                );
            }
        }
    }
}

/// DE's exclusion counters (loads/bypasses) agree between kernels on every
/// profile — `CacheStats` alone could mask a load/bypass mislabel that
/// happens to produce the same miss count.
#[test]
fn de_exclusion_counters_agree_across_kernels() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    let config = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
    for name in &names {
        let addrs = workloads.instr_addrs(name);
        let mut reference = DeCache::new(config);
        let ref_stats = run_addrs(&mut reference, addrs.iter().copied());
        let batch = batch_de(config, &addrs);
        assert_eq!(batch.stats, ref_stats, "{name}");
        assert_eq!(batch.loads, reference.de_stats().loads, "{name}");
        assert_eq!(batch.bypasses, reference.de_stats().bypasses, "{name}");
    }
}

/// Probe parity: the batch DE kernel must emit the reference cache's exact
/// event stream, and the interval series built from it must serialize to the
/// same CSV bytes.
#[test]
fn probe_events_and_interval_csv_are_byte_identical() {
    let workloads = workloads();
    let (name, _) = workloads.iter().next().expect("built-in profiles exist");
    let addrs = workloads.instr_addrs(name);
    let config = CacheConfig::direct_mapped(2 * 1024, 4).unwrap();
    const WINDOW: u64 = 500;

    let mut reference = DeCache::with_probe(config, (Collector::new(WINDOW), EventLog::new()));
    let ref_stats = run_addrs(&mut reference, addrs.iter().copied());
    let (ref_collector, ref_log) = reference.into_probe();

    let mut probe = (Collector::new(WINDOW), EventLog::new());
    let batch = batch_de_probed(config, &addrs, &mut probe);
    let (batch_collector, batch_log) = probe;

    assert_eq!(batch.stats, ref_stats);
    let ref_events = ref_log.into_events();
    let batch_events = batch_log.into_events();
    assert_eq!(batch_events.len(), ref_events.len());
    assert_eq!(batch_events, ref_events);

    let csv = |collector: &Collector| {
        let mut bytes = Vec::new();
        export::write_intervals_csv(&mut bytes, collector.intervals()).unwrap();
        bytes
    };
    assert_eq!(csv(&batch_collector), csv(&ref_collector));
}

/// Set-sharded runs agree across kernels at 1 and 4 workers: the sharded
/// path goes through `Policy::simulate`, so this exercises the engine-level
/// kernel dispatch end to end.
#[test]
fn sharded_stats_agree_across_kernels_at_jobs_1_and_4() {
    let _guard = lock_globals();
    let mut rng = SplitMix64::new(77);
    let addrs: Vec<u32> = (0..30_000).map(|_| (rng.below(8_192) as u32) * 4).collect();
    let config = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
    for policy in [
        Policy::DirectMapped,
        Policy::DynamicExclusion,
        Policy::OptimalDm,
    ] {
        let mut per_kernel = Vec::new();
        for kernel in [Kernel::Reference, Kernel::Batch] {
            set_default_kernel(kernel);
            let serial = policy.simulate(config, &addrs);
            for jobs in [1usize, 4] {
                assert_eq!(
                    sharded_policy_stats(config, policy, &addrs, 4, jobs),
                    serial,
                    "{} kernel={kernel} jobs={jobs}",
                    policy.name()
                );
            }
            per_kernel.push(serial);
        }
        set_default_kernel(Kernel::default());
        assert_eq!(per_kernel[0], per_kernel[1], "{}", policy.name());
    }
}

/// Figure CSVs are byte-identical across kernel × worker-count: the full
/// driver stack (workloads → triples → table → CSV) cannot tell the kernels
/// apart at `--jobs 1` or `--jobs 4`.
#[test]
fn figure_csv_bytes_identical_across_kernels_and_jobs() {
    let _guard = lock_globals();
    let workloads = workloads();
    for id in ["fig3", "fig5"] {
        let mut renders = Vec::new();
        for kernel in [Kernel::Reference, Kernel::Batch] {
            for jobs in [1usize, 4] {
                set_default_kernel(kernel);
                set_default_jobs(jobs);
                let table = figures::run(id, workloads).expect("known id");
                let mut bytes = Vec::new();
                table.write_csv(&mut bytes).unwrap();
                renders.push((kernel, jobs, bytes));
            }
        }
        set_default_kernel(Kernel::default());
        set_default_jobs(0);
        let (_, _, first) = &renders[0];
        for (kernel, jobs, bytes) in &renders[1..] {
            assert_eq!(bytes, first, "{id}: kernel={kernel} jobs={jobs}");
        }
    }
}

/// Engine fan-out parity: a plan of points executed on the pool yields the
/// same triples under both kernels at 1 and 4 workers.
#[test]
fn pooled_triples_identical_across_kernels_at_jobs_1_and_4() {
    let workloads = workloads();
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(n, _)| workloads.instr_addrs(n))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for size in SIZES {
        let config = CacheConfig::direct_mapped(size, 4).unwrap();
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }
    let run =
        |kernel: Kernel, jobs: usize| execute(&points, jobs, |&(c, a)| run_triple(kernel, c, a));
    let baseline = run(Kernel::Reference, 1);
    for (kernel, jobs) in [
        (Kernel::Reference, 4),
        (Kernel::Batch, 1),
        (Kernel::Batch, 4),
    ] {
        assert_eq!(run(kernel, jobs), baseline, "kernel={kernel} jobs={jobs}");
    }
}

/// The fused triple agrees with three independent batch runs on data
/// streams too (the instruction/data split is a different reference mix).
#[test]
fn fused_triple_matches_on_data_streams() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    let config = CacheConfig::direct_mapped(8 * 1024, 4).unwrap();
    for name in &names {
        let addrs = workloads.data_addrs(name);
        let fused = batch_triple(config, &addrs);
        assert_eq!(
            run_triple(Kernel::Reference, config, &addrs),
            dynex_experiments::Triple {
                dm: fused.dm,
                de: fused.de.stats,
                opt: fused.opt,
            },
            "{name}"
        );
    }
}
