//! The differential-testing wall for the fast simulation kernels.
//!
//! The `--kernel batch` and `--kernel sweep` fast paths are only admissible
//! because they are **bit-identical** to the reference simulators. This
//! suite holds that line as a three-way Reference × Batch × Sweep matrix
//! along every axis the drivers expose:
//!
//! * `CacheStats` (and DE load/bypass counters) for every built-in workload
//!   profile across a grid of cache sizes and line sizes,
//! * the fused dm+de+opt triple against three separate reference runs,
//! * probe event streams and interval-series CSV bytes,
//! * figure CSV output with the kernel and worker count flipped through the
//!   session globals, at `--jobs 1` and `--jobs 4`,
//! * `--resume` journals recorded under one kernel and replayed under
//!   another (journal keys are kernel-agnostic),
//! * decode edge cases — empty traces, shorter-than-a-chunk traces,
//!   chunk-boundary-straddling loops, all-filtering kind filters.
//!
//! Tests that flip the session-wide kernel/jobs globals serialize behind
//! [`GLOBALS`] and restore the defaults before releasing it, so the rest of
//! the binary never observes a half-flipped session (this is also why the
//! suite is safe under `cargo test`'s default parallel threading).

use std::sync::{Mutex, MutexGuard, OnceLock};

use dynex::DeCache;
use dynex_cache::{
    batch_de, batch_de_probed, batch_triple, decode_addrs, run_addrs, CacheConfig, Kernel,
    KindFilter, SplitMix64, CHUNK_LEN,
};
use dynex_engine::{
    execute, set_default_jobs, set_default_kernel, sharded_policy_stats, KernelSupport,
    PolicyKind,
};
use dynex_experiments::api::{self, run_triple, SimulationRequest};
use dynex_experiments::{figures, Workloads};
use dynex_obs::{export, Collector, EventLog};
use dynex_trace::{Access, PackedAccess};

/// Shared reduced-budget workloads (every built-in profile).
fn workloads() -> &'static Workloads {
    static WORKLOADS: OnceLock<Workloads> = OnceLock::new();
    WORKLOADS.get_or_init(|| Workloads::generate(6_000))
}

/// Serializes tests that mutate the session globals (default kernel, default
/// jobs); the guard restores the defaults on drop via the explicit calls at
/// the end of each test body.
fn lock_globals() -> MutexGuard<'static, ()> {
    static GLOBALS: Mutex<()> = Mutex::new(());
    // A poisoned lock only means another test failed while holding it; the
    // globals are self-restoring (every path below resets them), so continue.
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

const SIZES: [u32; 3] = [1024, 8 * 1024, 32 * 1024];
const LINES: [u32; 2] = [4, 16];

/// Every workload profile × size × line × policy: batch == reference, and
/// the fused triple == three reference runs. This is the acceptance-criteria
/// grid.
#[test]
fn every_profile_and_geometry_is_bit_identical_across_kernels() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    for name in &names {
        let addrs = workloads.instr_addrs(name);
        for size in SIZES {
            for line in LINES {
                let config = CacheConfig::direct_mapped(size, line).unwrap();
                for policy in [
                    PolicyKind::DirectMapped,
                    PolicyKind::DynamicExclusion,
                    PolicyKind::OptimalDm,
                ] {
                    let reference =
                        policy.simulate_kernel(Kernel::Reference, config, &addrs).unwrap();
                    assert_eq!(
                        policy.simulate_kernel(Kernel::Batch, config, &addrs).unwrap(),
                        reference,
                        "{name}: {} @ {config} (batch)",
                        policy.name()
                    );
                    assert_eq!(
                        policy.simulate_kernel(Kernel::Sweep, config, &addrs).unwrap(),
                        reference,
                        "{name}: {} @ {config} (sweep)",
                        policy.name()
                    );
                }
                let reference_triple = run_triple(Kernel::Reference, config, &addrs);
                assert_eq!(
                    run_triple(Kernel::Batch, config, &addrs),
                    reference_triple,
                    "{name}: fused triple @ {config}"
                );
                assert_eq!(
                    run_triple(Kernel::Sweep, config, &addrs),
                    reference_triple,
                    "{name}: swept triple @ {config}"
                );
            }
        }
    }
}

/// DE's exclusion counters (loads/bypasses) agree between kernels on every
/// profile — `CacheStats` alone could mask a load/bypass mislabel that
/// happens to produce the same miss count.
#[test]
fn de_exclusion_counters_agree_across_kernels() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    let config = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
    for name in &names {
        let addrs = workloads.instr_addrs(name);
        let mut reference = DeCache::new(config);
        let ref_stats = run_addrs(&mut reference, addrs.iter().copied());
        let batch = batch_de(config, &addrs);
        assert_eq!(batch.stats, ref_stats, "{name}");
        assert_eq!(batch.loads, reference.de_stats().loads, "{name}");
        assert_eq!(batch.bypasses, reference.de_stats().bypasses, "{name}");
    }
}

/// Probe parity: the batch DE kernel must emit the reference cache's exact
/// event stream, and the interval series built from it must serialize to the
/// same CSV bytes.
#[test]
fn probe_events_and_interval_csv_are_byte_identical() {
    let workloads = workloads();
    let (name, _) = workloads.iter().next().expect("built-in profiles exist");
    let addrs = workloads.instr_addrs(name);
    let config = CacheConfig::direct_mapped(2 * 1024, 4).unwrap();
    const WINDOW: u64 = 500;

    let mut reference = DeCache::with_probe(config, (Collector::new(WINDOW), EventLog::new()));
    let ref_stats = run_addrs(&mut reference, addrs.iter().copied());
    let (ref_collector, ref_log) = reference.into_probe();

    let mut probe = (Collector::new(WINDOW), EventLog::new());
    let batch = batch_de_probed(config, &addrs, &mut probe);
    let (batch_collector, batch_log) = probe;

    assert_eq!(batch.stats, ref_stats);
    let ref_events = ref_log.into_events();
    let batch_events = batch_log.into_events();
    assert_eq!(batch_events.len(), ref_events.len());
    assert_eq!(batch_events, ref_events);

    let csv = |collector: &Collector| {
        let mut bytes = Vec::new();
        export::write_intervals_csv(&mut bytes, collector.intervals()).unwrap();
        bytes
    };
    assert_eq!(csv(&batch_collector), csv(&ref_collector));
}

/// Set-sharded runs agree across kernels at 1 and 4 workers: the sharded
/// path goes through `PolicyKind::simulate`, so this exercises the engine-level
/// kernel dispatch end to end.
#[test]
fn sharded_stats_agree_across_kernels_at_jobs_1_and_4() {
    let _guard = lock_globals();
    let mut rng = SplitMix64::new(77);
    let addrs: Vec<u32> = (0..30_000).map(|_| (rng.below(8_192) as u32) * 4).collect();
    let config = CacheConfig::direct_mapped(4 * 1024, 4).unwrap();
    for policy in [
        PolicyKind::DirectMapped,
        PolicyKind::DynamicExclusion,
        PolicyKind::OptimalDm,
    ] {
        let mut per_kernel = Vec::new();
        for kernel in [Kernel::Reference, Kernel::Batch, Kernel::Sweep] {
            set_default_kernel(kernel);
            let serial = policy.simulate(config, &addrs).unwrap();
            for jobs in [1usize, 4] {
                assert_eq!(
                    sharded_policy_stats(config, policy, &addrs, 4, jobs),
                    serial,
                    "{} kernel={kernel} jobs={jobs}",
                    policy.name()
                );
            }
            per_kernel.push(serial);
        }
        set_default_kernel(Kernel::default());
        assert_eq!(per_kernel[0], per_kernel[1], "{}", policy.name());
        assert_eq!(per_kernel[0], per_kernel[2], "{} (sweep)", policy.name());
    }
}

/// Figure CSVs are byte-identical across kernel × worker-count: the full
/// driver stack (workloads → triples → table → CSV) cannot tell the kernels
/// apart at `--jobs 1` or `--jobs 4`.
#[test]
fn figure_csv_bytes_identical_across_kernels_and_jobs() {
    let _guard = lock_globals();
    let workloads = workloads();
    for id in ["fig3", "fig5"] {
        let mut renders = Vec::new();
        for kernel in [Kernel::Reference, Kernel::Batch, Kernel::Sweep] {
            for jobs in [1usize, 4] {
                set_default_kernel(kernel);
                set_default_jobs(jobs);
                let table = figures::run(id, workloads).expect("known id");
                let mut bytes = Vec::new();
                table.write_csv(&mut bytes).unwrap();
                renders.push((kernel, jobs, bytes));
            }
        }
        set_default_kernel(Kernel::default());
        set_default_jobs(0);
        let (_, _, first) = &renders[0];
        for (kernel, jobs, bytes) in &renders[1..] {
            assert_eq!(bytes, first, "{id}: kernel={kernel} jobs={jobs}");
        }
    }
}

/// Engine fan-out parity: a plan of points executed on the pool yields the
/// same triples under both kernels at 1 and 4 workers.
#[test]
fn pooled_triples_identical_across_kernels_at_jobs_1_and_4() {
    let workloads = workloads();
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(n, _)| workloads.instr_addrs(n))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for size in SIZES {
        let config = CacheConfig::direct_mapped(size, 4).unwrap();
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }
    let run =
        |kernel: Kernel, jobs: usize| execute(&points, jobs, |&(c, a)| run_triple(kernel, c, a));
    let baseline = run(Kernel::Reference, 1);
    for (kernel, jobs) in [
        (Kernel::Reference, 4),
        (Kernel::Batch, 1),
        (Kernel::Batch, 4),
        (Kernel::Sweep, 1),
        (Kernel::Sweep, 4),
    ] {
        assert_eq!(run(kernel, jobs), baseline, "kernel={kernel} jobs={jobs}");
    }
}

/// A `--resume` journal recorded under one kernel replays byte-identically
/// under the other two: content keys are kernel-agnostic, so a checkpointed
/// sweep never re-simulates just because the session kernel changed.
#[test]
fn resume_journal_replays_across_kernels() {
    let _guard = lock_globals();
    let dir = std::env::temp_dir().join(format!("dynex-xkernel-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    let build = |kernel: &str| {
        let mut b = SimulationRequest::builder();
        b.org("de")
            .size("2K")
            .line(4)
            .profile("espresso")
            .refs(20_000)
            .jobs(1)
            .kernel(kernel)
            .resume(&journal);
        b.build().expect("valid request")
    };

    // Record under batch.
    let request = build("batch");
    api::install_session(&request).unwrap();
    let recorded = api::run(&request).unwrap();
    dynex_engine::set_global_journal(None);
    assert!(!recorded.cached, "cold journal simulates");

    // Replay under sweep and reference: pure journal replay, same bytes.
    for kernel in ["sweep", "reference"] {
        let request = build(kernel);
        api::install_session(&request).unwrap();
        let replayed = api::run(&request).unwrap();
        dynex_engine::set_global_journal(None);
        assert!(replayed.cached, "kernel={kernel} replays from the journal");
        assert_eq!(replayed.stats, recorded.stats, "kernel={kernel}");
        assert_eq!(replayed.label, recorded.label, "kernel={kernel}");
        assert_eq!(replayed.de, recorded.de, "kernel={kernel}");
        assert_eq!(replayed.key, recorded.key, "kernel={kernel}");
    }

    // And the other direction: a journal recorded under sweep replays under
    // batch with the same key and payload.
    let journal2 = dir.join("journal2.jsonl");
    let mut b = SimulationRequest::builder();
    b.org("de")
        .size("2K")
        .line(4)
        .profile("espresso")
        .refs(20_000)
        .jobs(1)
        .kernel("sweep")
        .resume(&journal2);
    let request = b.build().unwrap();
    api::install_session(&request).unwrap();
    let swept = api::run(&request).unwrap();
    dynex_engine::set_global_journal(None);
    assert!(!swept.cached);
    assert_eq!(swept.stats, recorded.stats, "sweep simulates identically");
    let request = build("batch");
    // Point the batch request at the sweep-recorded journal.
    let mut request = request;
    request.resume = Some(journal2);
    api::install_session(&request).unwrap();
    let replayed = api::run(&request).unwrap();
    dynex_engine::set_global_journal(None);
    assert!(
        replayed.cached,
        "sweep-recorded journal replays under batch"
    );
    assert_eq!(replayed.stats, recorded.stats);

    set_default_kernel(Kernel::default());
    set_default_jobs(0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Decode/chunking edge cases agree across all three kernels: the empty
/// trace, a trace shorter than one decode chunk, and a loop whose
/// iterations straddle the chunk boundary.
#[test]
fn decode_edge_cases_agree_across_all_kernels() {
    let empty: Vec<u32> = Vec::new();
    let short: Vec<u32> = (0..17).map(|i| i * 4).collect();
    let mut straddle: Vec<u32> = Vec::new();
    for _ in 0..3 {
        straddle.extend((0..(CHUNK_LEN as u32 + 37)).map(|i| (i % 600) * 4));
    }
    let config = CacheConfig::direct_mapped(1024, 4).unwrap();
    for (tag, addrs) in [
        ("empty", &empty),
        ("short", &short),
        ("straddle", &straddle),
    ] {
        for policy in [
            PolicyKind::DirectMapped,
            PolicyKind::DynamicExclusion,
            PolicyKind::OptimalDm,
        ] {
            let reference = policy
                .simulate_kernel(Kernel::Reference, config, addrs)
                .unwrap();
            assert_eq!(reference.accesses(), addrs.len() as u64, "{tag}");
            for kernel in [Kernel::Batch, Kernel::Sweep] {
                assert_eq!(
                    policy.simulate_kernel(kernel, config, addrs).unwrap(),
                    reference,
                    "{tag}: {} kernel={kernel}",
                    policy.name()
                );
            }
        }
        let reference_triple = run_triple(Kernel::Reference, config, addrs);
        for kernel in [Kernel::Batch, Kernel::Sweep] {
            assert_eq!(
                run_triple(kernel, config, addrs),
                reference_triple,
                "{tag}: triple kernel={kernel}"
            );
        }
    }
}

/// An all-filtering kind filter (instructions-only over a pure-data trace)
/// leaves zero references, and every kernel agrees on the resulting
/// all-zero statistics.
#[test]
fn all_filtering_kind_filter_agrees_across_kernels() {
    let packed: Vec<PackedAccess> = (0..100)
        .map(|i| PackedAccess::pack(Access::read(i * 4)))
        .collect();
    let addrs = decode_addrs(&packed, KindFilter::Instructions);
    assert!(addrs.is_empty(), "the filter drops every reference");
    let config = CacheConfig::direct_mapped(1024, 4).unwrap();
    for policy in [
        PolicyKind::DirectMapped,
        PolicyKind::DynamicExclusion,
        PolicyKind::OptimalDm,
    ] {
        for kernel in [Kernel::Reference, Kernel::Batch, Kernel::Sweep] {
            let stats = policy.simulate_kernel(kernel, config, &addrs).unwrap();
            assert_eq!(stats.accesses(), 0, "{} kernel={kernel}", policy.name());
            assert_eq!(stats.misses(), 0, "{} kernel={kernel}", policy.name());
        }
    }
}

/// The fused triple agrees with three independent batch runs on data
/// streams too (the instruction/data split is a different reference mix).
#[test]
fn fused_triple_matches_on_data_streams() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    let config = CacheConfig::direct_mapped(8 * 1024, 4).unwrap();
    for name in &names {
        let addrs = workloads.data_addrs(name);
        let fused = batch_triple(config, &addrs);
        assert_eq!(
            run_triple(Kernel::Reference, config, &addrs),
            dynex_experiments::Triple {
                dm: fused.dm,
                de: fused.de.stats,
                opt: fused.opt,
            },
            "{name}"
        );
    }
}

/// The policy-matrix leg of the wall: every member of the policy zoo runs
/// bit-identically on every kernel that declares support for it, and every
/// declared-unsupported combination fails with the structured capability
/// error (never a silent fallback). This is the CI policy-matrix job's
/// anchor test.
#[test]
fn policy_matrix_is_bit_identical_on_every_supporting_kernel() {
    let workloads = workloads();
    let names: Vec<String> = workloads.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names.iter().take(4) {
        let addrs = workloads.instr_addrs(name);
        for size in [1024u32, 8 * 1024] {
            let config = CacheConfig::direct_mapped(size, 4).unwrap();
            for policy in PolicyKind::ALL {
                let reference = policy
                    .simulate_kernel(Kernel::Reference, config, &addrs)
                    .expect("the reference kernel runs every policy");
                for kernel in [Kernel::Batch, Kernel::Sweep] {
                    match policy.kernel_support(kernel) {
                        KernelSupport::Unsupported => {
                            let err = policy
                                .simulate_kernel(kernel, config, &addrs)
                                .expect_err("declared-unsupported combos must error");
                            let message = err.to_string();
                            assert!(
                                message.contains(policy.name()),
                                "{name}: {message}"
                            );
                            assert!(message.contains("reference"), "{name}: {message}");
                        }
                        KernelSupport::Specialized | KernelSupport::ReferenceFallback => {
                            assert_eq!(
                                policy.simulate_kernel(kernel, config, &addrs).unwrap(),
                                reference,
                                "{name}: {} @ {config} kernel={kernel}",
                                policy.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The traffic-accounting policies agree on their bandwidth counters across
/// kernels, not just on hit/miss statistics — `CacheStats` equality is
/// derived over all five counters, so this pins fills/writebacks/probes too.
#[test]
fn traffic_counters_are_bit_identical_across_kernels() {
    let workloads = workloads();
    let (name, _) = workloads.iter().next().expect("built-in profiles exist");
    let addrs = workloads.instr_addrs(name);
    let config = CacheConfig::direct_mapped(2 * 1024, 4).unwrap();
    for policy in [PolicyKind::ExpectedHitCount, PolicyKind::BandwidthCost] {
        let reference = policy
            .simulate_kernel(Kernel::Reference, config, &addrs)
            .unwrap();
        let batch = policy
            .simulate_kernel(Kernel::Batch, config, &addrs)
            .unwrap();
        assert_eq!(batch, reference, "{}", policy.name());
        assert_eq!(batch.probes(), addrs.len() as u64, "{}", policy.name());
        assert!(batch.fills() <= batch.misses(), "{}", policy.name());
    }
}
