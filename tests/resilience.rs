//! Fault-isolation and checkpoint/resume integration tests.
//!
//! Three layers are exercised end to end:
//!
//! * the engine's resilient pool over *real* simulation jobs (panic + hang
//!   in one sweep, every other slot bit-identical at any worker count);
//! * `experiments --resume`: a journaled sweep interrupted mid-flight (by
//!   truncating its journal, and by killing the process) reproduces
//!   byte-identical CSV output when resumed;
//! * the `simcache` CLI: `--resume` replay (including across `--kernel`
//!   values — journal keys are kernel-agnostic), `--lenient` trace
//!   ingestion, injected shard faults, and the malformed-flag/environment
//!   hardening.
//!
//! Spawned CLIs run with every `DYNEX_*` variable scrubbed and fault
//! injection is passed via `Command::env`, so the suite is hermetic under
//! any `--test-threads` value and any runner environment.

use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use dynex_cache::CacheConfig;
use dynex_engine::{execute_resilient, JobFailure, PolicyKind, Resilience};
use dynex_trace::io::write_binary;
use dynex_trace::{Access, Trace};

/// A unique scratch directory per test (the suite runs tests concurrently).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dynex-resilience-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every environment variable any dynex binary reads. Spawned CLIs get all
/// of them scrubbed so a stray variable in the *test runner's* environment
/// (or one set by a concurrently-running test via `Command::env`, which is
/// per-child and cannot leak — fault injection relies on that) can never
/// change a subprocess's behaviour. Keeping one authoritative list means a
/// newly added knob only needs to be registered here once.
const DYNEX_ENV_VARS: [&str; 5] = [
    "DYNEX_JOBS",
    "DYNEX_REFS",
    "DYNEX_BLESS",
    "DYNEX_INJECT_PANIC_SHARD",
    "DYNEX_INJECT_HANG_SHARD",
];

/// `experiments` invocation with a hermetic environment (no stray DYNEX_*).
fn experiments_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    for var in DYNEX_ENV_VARS {
        cmd.env_remove(var);
    }
    cmd
}

/// `simcache` invocation with a hermetic environment.
fn simcache_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simcache"));
    for var in DYNEX_ENV_VARS {
        cmd.env_remove(var);
    }
    cmd
}

#[test]
fn resilient_sweep_isolates_panic_and_hang_over_real_simulation_jobs() {
    // The acceptance scenario over real jobs: a sweep of cache sizes where
    // one point panics and one hangs. The sweep must complete with exactly
    // those two cells failed, and every other cell bit-identical to a clean
    // serial run — at every worker count.
    let addrs: Vec<u32> = (0..4000u32).map(|i| (i % 700) * 4).collect();
    let sizes: Vec<u32> = (0..10).map(|i| 64 << (i % 5)).collect();
    let serial: Vec<_> = sizes
        .iter()
        .map(|&s| {
            let config = CacheConfig::direct_mapped(s, 4).unwrap();
            PolicyKind::DynamicExclusion.simulate(config, &addrs).unwrap()
        })
        .collect();

    for jobs in [1, 2, 4, 8] {
        let items: Arc<Vec<(u32, Vec<u32>)>> =
            Arc::new(sizes.iter().map(|&s| (s, addrs.clone())).collect());
        let outcome = execute_resilient(
            items,
            jobs,
            Resilience::default().deadline(Duration::from_millis(250)),
            |(size, addrs)| {
                let config = CacheConfig::direct_mapped(*size, 4).unwrap();
                PolicyKind::DynamicExclusion.simulate(config, addrs).unwrap()
            },
        );
        // No faults injected here: a clean resilient sweep must equal serial.
        assert!(!outcome.has_failures(), "jobs={jobs}");
        for (slot, expected) in outcome.results().iter().zip(&serial) {
            assert_eq!(slot.as_ref().unwrap(), expected, "jobs={jobs}");
        }

        // Same sweep with plan points 3 (panic) and 7 (hang) sabotaged.
        let items: Arc<Vec<(usize, u32, Vec<u32>)>> = Arc::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| (i, s, addrs.clone()))
                .collect(),
        );
        let outcome = execute_resilient(
            items,
            jobs,
            Resilience::default().deadline(Duration::from_millis(250)),
            |(plan_index, size, addrs)| {
                if *plan_index == 3 {
                    panic!("sabotaged point");
                }
                if *plan_index == 7 {
                    std::thread::sleep(Duration::from_secs(600));
                }
                let config = CacheConfig::direct_mapped(*size, 4).unwrap();
                PolicyKind::DynamicExclusion.simulate(config, addrs).unwrap()
            },
        );
        let counts = outcome.counts();
        assert_eq!(counts.panicked, 1, "jobs={jobs}");
        assert_eq!(counts.timed_out, 1, "jobs={jobs}");
        assert_eq!(counts.ok, sizes.len() - 2, "jobs={jobs}");
        for (i, slot) in outcome.results().iter().enumerate() {
            match i {
                3 => assert!(matches!(
                    slot.as_ref().unwrap_err().failure,
                    JobFailure::Panicked { .. }
                )),
                7 => assert!(matches!(
                    slot.as_ref().unwrap_err().failure,
                    JobFailure::TimedOut { .. }
                )),
                _ => assert_eq!(slot.as_ref().unwrap(), &serial[i], "jobs={jobs} slot={i}"),
            }
        }
    }
}

#[test]
fn experiments_resume_after_journal_truncation_is_byte_identical() {
    let dir = scratch("truncate");
    let journal = dir.join("sweep.journal");
    let out_a = dir.join("a");
    let out_b = dir.join("b");
    let out_plain = dir.join("plain");

    let run = |out: &std::path::Path, resume: bool| {
        let mut cmd = experiments_cmd();
        cmd.args(["--refs", "20000", "--out"]).arg(out);
        if resume {
            cmd.arg("--resume").arg(&journal);
        }
        cmd.arg("fig5");
        let output = cmd.output().expect("experiments runs");
        assert!(
            output.status.success(),
            "experiments failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stderr).into_owned()
    };

    // Full journaled run, then an identical run without any journal.
    run(&out_a, true);
    run(&out_plain, false);
    let csv_a = std::fs::read(out_a.join("fig5.csv")).unwrap();
    let csv_plain = std::fs::read(out_plain.join("fig5.csv")).unwrap();
    assert_eq!(csv_a, csv_plain, "journaling must not change results");

    // Simulate an interrupted sweep: keep only half the journal and leave a
    // torn partial record at the tail (what kill -9 mid-append produces).
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 2,
        "expected several checkpointed points, got {}",
        lines.len()
    );
    let mut half: String = lines[..lines.len() / 2]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    half.push_str("{\"key\":\"torn-rec"); // no closing brace, no newline
    std::fs::write(&journal, half).unwrap();

    // Resume: replays the surviving half, re-simulates the rest, and the
    // final CSV is byte-identical.
    let stderr = run(&out_b, true);
    assert!(
        stderr.contains("point(s) replayed"),
        "stderr should report replays:\n{stderr}"
    );
    assert!(
        stderr.contains("torn line(s) dropped"),
        "stderr should report the torn record:\n{stderr}"
    );
    let csv_b = std::fs::read(out_b.join("fig5.csv")).unwrap();
    assert_eq!(csv_a, csv_b, "resumed output must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_killed_midway_resumes_to_identical_output() {
    let dir = scratch("kill");
    let journal = dir.join("sweep.journal");
    let out_resumed = dir.join("resumed");
    let out_clean = dir.join("clean");

    // Start a journaled run and kill it shortly after. Depending on machine
    // speed the kill lands before, during, or after the sweep — resume must
    // produce identical output in every case.
    let mut child = experiments_cmd()
        .args(["--refs", "20000"])
        .arg("--resume")
        .arg(&journal)
        .arg("--out")
        .arg(dir.join("first"))
        .arg("fig5")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("experiments spawns");
    std::thread::sleep(Duration::from_millis(400));
    let _ = child.kill();
    let _ = child.wait();

    let run = |out: &std::path::Path, resume: bool| {
        let mut cmd = experiments_cmd();
        cmd.args(["--refs", "20000", "--out"]).arg(out);
        if resume {
            cmd.arg("--resume").arg(&journal);
        }
        cmd.arg("fig5");
        let output = cmd.output().expect("experiments runs");
        assert!(
            output.status.success(),
            "experiments failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run(&out_resumed, true);
    run(&out_clean, false);
    let resumed = std::fs::read(out_resumed.join("fig5.csv")).unwrap();
    let clean = std::fs::read(out_clean.join("fig5.csv")).unwrap();
    assert_eq!(resumed, clean, "post-kill resume must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a small text trace and returns its path.
fn write_text_trace(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("trace.txt");
    let mut text = String::new();
    for i in 0..4000u32 {
        text.push_str(&format!("F {:#x}\n", (i % 700) * 4));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn simcache_resume_replays_byte_identical_output() {
    let dir = scratch("simcache-resume");
    let trace = write_text_trace(&dir);
    let journal = dir.join("run.journal");

    let run = || {
        let output = simcache_cmd()
            .arg(&trace)
            .args(["--size", "1K", "--line", "4", "--org", "de"])
            .arg("--resume")
            .arg(&journal)
            .output()
            .expect("simcache runs");
        assert!(
            output.status.success(),
            "simcache failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        (
            output.stdout,
            String::from_utf8_lossy(&output.stderr).into_owned(),
        )
    };
    let (stdout_first, stderr_first) = run();
    assert!(!stderr_first.contains("replayed from journal"));
    let (stdout_second, stderr_second) = run();
    assert!(
        stderr_second.contains("replayed from journal"),
        "second run should replay:\n{stderr_second}"
    );
    assert_eq!(
        stdout_first, stdout_second,
        "replayed output must be byte-identical"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The resume journal's keys deliberately do not encode the kernel: both
/// kernels are bit-identical, so a journal written under `--kernel batch`
/// must replay under `--kernel reference` (and vice versa) with
/// byte-identical output. This is also the regression guard for the journal
/// format itself — if a kernel ever stopped being bit-identical, the fresh
/// reference run below would diverge from the replayed one.
#[test]
fn simcache_resume_is_kernel_agnostic() {
    let dir = scratch("kernel-resume");
    let trace = write_text_trace(&dir);
    let journal = dir.join("run.journal");

    let run = |kernel: &str, resume: bool| {
        let mut cmd = simcache_cmd();
        cmd.arg(&trace).args([
            "--size", "1K", "--line", "4", "--org", "de", "--kernel", kernel,
        ]);
        if resume {
            cmd.arg("--resume").arg(&journal);
        }
        let output = cmd.output().expect("simcache runs");
        assert!(
            output.status.success(),
            "simcache --kernel {kernel} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        (
            output.stdout,
            String::from_utf8_lossy(&output.stderr).into_owned(),
        )
    };

    // Journal written by the batch kernel...
    let (stdout_batch, stderr_batch) = run("batch", true);
    assert!(!stderr_batch.contains("replayed from journal"));

    // ...replays under the reference kernel without re-simulating.
    let (stdout_replayed, stderr_replayed) = run("reference", true);
    assert!(
        stderr_replayed.contains("replayed from journal"),
        "cross-kernel resume should replay, not re-simulate:\n{stderr_replayed}"
    );
    assert_eq!(
        stdout_batch, stdout_replayed,
        "cross-kernel replay must be byte-identical"
    );

    // And a fresh reference-kernel run (no journal) agrees byte for byte,
    // so the replayed numbers are the numbers reference would have produced.
    let (stdout_fresh, _) = run("reference", false);
    assert_eq!(
        stdout_batch, stdout_fresh,
        "kernels must produce byte-identical simcache output"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simcache_lenient_tolerates_exactly_the_budgeted_corruption() {
    let dir = scratch("lenient");
    let path = dir.join("corrupt.dxt");
    let trace: Trace = (0..100u32).map(|i| Access::fetch((i % 40) * 4)).collect();
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &trace).unwrap();
    // Corrupt three packed words (reserved kind bits) at references 5, 17, 60.
    for index in [5usize, 17, 60] {
        let at = 12 + 4 * index;
        bytes[at..at + 4].copy_from_slice(&(3u32 << 30).to_le_bytes());
    }
    std::fs::write(&path, &bytes).unwrap();

    let run = |extra: &[&str]| {
        simcache_cmd()
            .arg(&path)
            .args(["--size", "256", "--line", "4"])
            .args(extra)
            .output()
            .expect("simcache runs")
    };

    // Strict (default): hard failure naming the first corrupt reference.
    let strict = run(&[]);
    assert!(!strict.status.success());
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(
        stderr.contains("corrupt packed access at reference 5"),
        "strict failure should name reference 5:\n{stderr}"
    );

    // Lenient with a sufficient budget: succeeds, reports exactly 3 skips.
    let lenient = run(&["--lenient", "3"]);
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(lenient.status.success(), "lenient run failed:\n{stderr}");
    assert!(
        stderr.contains("3 corrupt record(s) skipped"),
        "lenient run should count 3 skips:\n{stderr}"
    );
    assert!(
        stderr.contains("3 skipped"),
        "trace stats should carry the skip tally:\n{stderr}"
    );
    assert!(
        stderr.contains("97 references selected"),
        "97 of 100 references should survive:\n{stderr}"
    );

    // Lenient with a too-small budget: fails fast once the budget breaks.
    let broke = run(&["--lenient", "2"]);
    assert!(!broke.status.success());
    let stderr = String::from_utf8_lossy(&broke.stderr);
    assert!(
        stderr.contains("lenient read gave up at offset 60"),
        "budget failure should name the breaking record:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simcache_sharded_fault_injection_yields_partial_results_and_nonzero_exit() {
    let dir = scratch("inject");
    let trace = write_text_trace(&dir);

    // Clean sharded run first: exits zero.
    let clean = simcache_cmd()
        .arg(&trace)
        .args(["--size", "1K", "--org", "de", "--shard-sets", "--jobs", "4"])
        .output()
        .expect("simcache runs");
    assert!(
        clean.status.success(),
        "clean sharded run failed:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // One shard panics (with retries, so attempts show up) and one hangs.
    let output = simcache_cmd()
        .arg(&trace)
        .args(["--size", "1K", "--org", "de", "--shard-sets", "--jobs", "4"])
        .args(["--job-retries", "2", "--job-timeout-ms", "300"])
        .env("DYNEX_INJECT_PANIC_SHARD", "0")
        .env("DYNEX_INJECT_HANG_SHARD", "1")
        .output()
        .expect("simcache runs");
    assert!(
        !output.status.success(),
        "injected faults must produce a nonzero exit"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stderr.contains("ok 2 | retried 2 | panicked 1 | timed-out 1"),
        "summary should count both failures and the retries:\n{stderr}"
    );
    assert!(
        stderr.contains("shard 0 | panicked | 3 | injected fault"),
        "failure table should show the exhausted attempts:\n{stderr}"
    );
    assert!(
        stderr.contains("shard 1 | timed-out"),
        "failure table should show the hung shard:\n{stderr}"
    );
    assert!(
        stdout.contains("PARTIAL 2/4 shards"),
        "partial statistics must be labelled as partial:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clis_reject_malformed_flags_and_environment() {
    let dir = scratch("hardening");
    let trace = write_text_trace(&dir);

    // experiments: malformed DYNEX_REFS / DYNEX_JOBS fail loudly (they were
    // previously silently ignored), and zero budgets are rejected.
    let cases = [
        (vec!["list"], Some(("DYNEX_REFS", "abc")), "DYNEX_REFS"),
        (vec!["list"], Some(("DYNEX_REFS", "0")), "DYNEX_REFS"),
        (vec!["list"], Some(("DYNEX_JOBS", "eight")), "DYNEX_JOBS"),
        (vec!["list"], Some(("DYNEX_JOBS", "0")), "DYNEX_JOBS"),
        (vec!["--refs", "0", "list"], None, "--refs"),
        (vec!["--refs", "many", "list"], None, "--refs"),
        (vec!["--jobs", "0", "list"], None, "--jobs"),
    ];
    for (args, env, needle) in cases {
        let mut cmd = experiments_cmd();
        cmd.args(&args);
        if let Some((k, v)) = env {
            cmd.env(k, v);
        }
        let output = cmd.output().expect("experiments runs");
        assert!(!output.status.success(), "args={args:?} env={env:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(needle),
            "args={args:?} env={env:?}: error should mention {needle}:\n{stderr}"
        );
    }

    // simcache: malformed --size values are rejected (previously a bad value
    // silently degraded into "--size is required").
    for bad_size in ["0", "12Q", "lots", "0K"] {
        let output = simcache_cmd()
            .arg(&trace)
            .args(["--size", bad_size])
            .output()
            .expect("simcache runs");
        assert!(!output.status.success(), "--size {bad_size}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("bad --size value"),
            "--size {bad_size}:\n{stderr}"
        );
    }

    // simcache: malformed DYNEX_JOBS fails before doing any work.
    let output = simcache_cmd()
        .arg(&trace)
        .args(["--size", "1K"])
        .env("DYNEX_JOBS", "many")
        .output()
        .expect("simcache runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("DYNEX_JOBS"));

    // simcache: --resume composes with neither sharding nor observability.
    let journal = dir.join("j.jsonl");
    for extra in [vec!["--shard-sets"], vec!["--events-out", "/dev/null"]] {
        let output = simcache_cmd()
            .arg(&trace)
            .args(["--size", "1K"])
            .arg("--resume")
            .arg(&journal)
            .args(&extra)
            .output()
            .expect("simcache runs");
        assert!(!output.status.success(), "extra={extra:?}");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("--resume"),
            "extra={extra:?}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
