//! End-to-end tests for the sharded serve tier: a real [`Router`] over real
//! in-process [`Server`] shards, exercised through the actual TCP stack.
//!
//! The load-bearing guarantee is the first test: for the same request, the
//! *routed* response body is byte-for-byte the response the owning shard
//! serves *directly*. Everything a client can key on — the label, the
//! statistics, the content key, the cache flag — is relayed unmodified.
//! (Trace ids are per-request randomness, so the comparison runs with the
//! result cache disabled and checks bodies, not the trace header value;
//! the relayed header's presence and shape are asserted separately.)

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynex_experiments::api::SimulationRequest;
use dynex_serve::{
    client, shard_for_key, BreakerState, Router, RouterConfig, ServeConfig, Server, ShardDirectory,
};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A shard with the result cache off: every request re-simulates, so the
/// same body always produces the same response bytes (`"cached":false`)
/// whether it arrives directly or through the router.
fn uncached_shard() -> Server {
    Server::start(ServeConfig {
        jobs: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    })
    .expect("shard boots")
}

/// A small profile-trace request; `size` distinguishes routing keys.
fn body(size: &str) -> String {
    format!(
        r#"{{"org":"de","size":"{size}","line":4,"trace":{{"source":"profile","profile":"espresso"}},"refs":30000}}"#
    )
}

/// The shard index the router will place this request body on.
fn owning_shard(body: &str, shards: usize) -> usize {
    let request = SimulationRequest::from_json(body).expect("valid request body");
    shard_for_key(&request.routing_key().expect("routing key"), shards)
}

#[test]
fn routed_responses_are_byte_identical_to_direct_shard_responses() {
    let shards = [uncached_shard(), uncached_shard()];
    let addrs = vec![shards[0].addr(), shards[1].addr()];
    let router = Router::start(RouterConfig {
        shards: addrs.clone(),
        ..RouterConfig::default()
    })
    .expect("router boots");

    let mut placements = [0usize; 2];
    for size in ["1K", "2K", "4K", "8K", "16K"] {
        let body = body(size);
        let shard = owning_shard(&body, 2);
        placements[shard] += 1;

        let direct =
            client::call(addrs[shard], "POST", "/simulate", &body, TIMEOUT).expect("direct call");
        let routed =
            client::call(router.addr(), "POST", "/simulate", &body, TIMEOUT).expect("routed call");

        assert_eq!(direct.status, 200, "direct: {}", direct.body);
        assert_eq!(routed.status, direct.status);
        assert_eq!(
            routed.body, direct.body,
            "size {size}: routed bytes differ from the owning shard's"
        );
        // The relay forwards the shard's trace header (fresh id per
        // request, so shape is what is checkable).
        let trace = routed.trace.expect("routed response carries a trace id");
        assert_eq!(trace.len(), 16, "trace id {trace:?}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));
    }
    // The five sizes must not all land on one shard, or this test would
    // silently stop covering the relay path for half the fleet.
    assert!(
        placements.iter().all(|&n| n > 0),
        "placements {placements:?}: rendezvous hashing degenerated"
    );

    client::call(router.addr(), "POST", "/shutdown", "", TIMEOUT).expect("drain");
    router.join();
    for shard in shards {
        shard.join();
    }
}

#[test]
fn merged_metrics_sum_shard_counters_and_rebuild_latency() {
    use dynex_obs::json::{self, Json};

    let shards = [uncached_shard(), uncached_shard()];
    let router = Router::start(RouterConfig {
        shards: vec![shards[0].addr(), shards[1].addr()],
        ..RouterConfig::default()
    })
    .expect("router boots");

    let sizes = ["1K", "2K", "4K", "8K"];
    for size in &sizes {
        let response = client::call(router.addr(), "POST", "/simulate", &body(size), TIMEOUT)
            .expect("routed call");
        assert_eq!(response.status, 200, "{}", response.body);
    }

    let merged = client::call(router.addr(), "GET", "/metrics", "", TIMEOUT).expect("metrics");
    assert_eq!(merged.status, 200);
    let doc = json::parse(&merged.body).expect("merged metrics JSON");
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("counter {name} missing: {}", merged.body))
    };
    // Shard counters merged across the fleet: every routed simulation
    // executed exactly once somewhere.
    assert_eq!(counter("sims-executed"), sizes.len() as u64);
    // Router's own counters ride in the same registry.
    assert_eq!(counter("router-routed"), sizes.len() as u64);
    assert_eq!(
        counter("router-routed-shard-0") + counter("router-routed-shard-1"),
        sizes.len() as u64
    );
    // The latency summary is rebuilt from the merged per-stage histograms
    // and must carry at least every executed simulation. (At least, not
    // exactly: in-process shards share the process-global span recorder,
    // so each shard's /metrics reports the whole process's samples and the
    // merge double-counts them. The real topology — worker *processes*,
    // exercised by scripts/load_smoke.sh — has disjoint recorders.)
    let simulate_count = doc
        .get("latency_summary")
        .and_then(|s| s.get("simulate"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no simulate latency in: {}", merged.body));
    assert!(simulate_count >= sizes.len() as u64, "{simulate_count}");
    // Per-shard breakdown: both shards merged cleanly.
    let rows = doc
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards table");
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .all(|row| row.get("merged").and_then(Json::as_bool) == Some(true)));

    client::call(router.addr(), "POST", "/shutdown", "", TIMEOUT).expect("drain");
    router.join();
    for shard in shards {
        shard.join();
    }
}

#[test]
fn dead_shard_fails_loudly_with_the_shard_id() {
    let survivor = uncached_shard();
    let casualty = uncached_shard();
    let router = Router::start(RouterConfig {
        shards: vec![survivor.addr(), casualty.addr()],
        // Long probe interval: the test drives the health transition via
        // the failed relay, not the background probe.
        health_interval: Duration::from_secs(30),
        relay_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    })
    .expect("router boots");

    // Find one request per shard.
    let mut per_shard = [None, None];
    for size in ["1K", "2K", "4K", "8K", "16K", "32K"] {
        let body = body(size);
        per_shard[owning_shard(&body, 2)].get_or_insert(body);
    }
    let to_survivor = per_shard[0].clone().expect("a request for shard 0");
    let to_casualty = per_shard[1].clone().expect("a request for shard 1");

    // Kill shard 1 outright.
    casualty.shutdown();
    casualty.join();

    // Its traffic fails loudly, naming the shard in the JSON body...
    let response = client::call(router.addr(), "POST", "/simulate", &to_casualty, TIMEOUT)
        .expect("router still answers");
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(
        response.body.contains(r#""shard":1"#),
        "503 must name the dead shard: {}",
        response.body
    );
    assert!(response.body.contains("unavailable"), "{}", response.body);

    // ...the health view degrades immediately (relay failure, no probe)...
    assert!(!router.shard_healthy(1));
    let health = client::call(router.addr(), "GET", "/healthz", "", TIMEOUT).expect("healthz");
    assert!(
        health.body.contains(r#""status":"degraded""#),
        "{}",
        health.body
    );
    assert!(
        health.body.contains(r#""healthy":false"#),
        "{}",
        health.body
    );

    // ...and the surviving shard keeps serving through the router.
    let response = client::call(router.addr(), "POST", "/simulate", &to_survivor, TIMEOUT)
        .expect("routed call");
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(router.counter("router-shard-errors"), 1);

    client::call(router.addr(), "POST", "/shutdown", "", TIMEOUT).expect("drain");
    router.join();
    survivor.join();
}

#[test]
fn breaker_cycles_open_half_open_closed_across_a_shard_replacement() {
    // The full circuit-breaker life cycle against in-process shards, with
    // the address swap a ShardFleet respawn would perform done by hand:
    // probe failures open the breaker (fast-fail 503s), a probe success
    // against the replacement moves it to half-open, and the next relayed
    // request closes it with byte-identical service.
    let survivor = uncached_shard();
    let casualty = uncached_shard();
    let directory = Arc::new(ShardDirectory::new(&[survivor.addr(), casualty.addr()]));
    let router = Router::start_with(
        RouterConfig {
            health_interval: Duration::from_millis(50),
            relay_timeout: Duration::from_secs(5),
            ..RouterConfig::default()
        },
        Arc::clone(&directory),
    )
    .expect("router boots");

    let mut per_shard = [None, None];
    for size in ["1K", "2K", "4K", "8K", "16K", "32K"] {
        let body = body(size);
        per_shard[owning_shard(&body, 2)].get_or_insert(body);
    }
    let to_casualty = per_shard[1].clone().expect("a request for shard 1");

    casualty.shutdown();
    casualty.join();

    // The background probe notices and opens the circuit.
    let deadline = Instant::now() + Duration::from_secs(10);
    while directory.breaker(1) != BreakerState::Open && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        directory.breaker(1),
        BreakerState::Open,
        "probe never opened"
    );
    assert!(router.counter("router-breaker-open") >= 1);
    assert!(!router.shard_healthy(1));

    // Open circuit: the slot's keys fast-fail with the shard id, no
    // socket touch (the dead addr would have said "connect", not
    // "circuit open").
    let response = client::call(router.addr(), "POST", "/simulate", &to_casualty, TIMEOUT)
        .expect("router still answers");
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(response.body.contains("circuit open"), "{}", response.body);
    assert!(response.body.contains(r#""shard":1"#), "{}", response.body);
    let health = client::call(router.addr(), "GET", "/healthz", "", TIMEOUT).expect("healthz");
    assert!(
        health.body.contains(r#""breaker":"open""#),
        "{}",
        health.body
    );

    // "Respawn": a replacement worker on a new address, swapped into the
    // same slot — exactly what the supervisor does.
    let replacement = uncached_shard();
    directory.set_addr(1, replacement.addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    while directory.breaker(1) != BreakerState::HalfOpen && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        directory.breaker(1),
        BreakerState::HalfOpen,
        "probe success must half-open the circuit"
    );

    // The next relayed request closes the circuit, and its bytes match
    // the replacement's direct answer (warm-journal replay byte-identity
    // is the process-level sibling, covered by the self-heal e2e).
    let direct = client::call(
        replacement.addr(),
        "POST",
        "/simulate",
        &to_casualty,
        TIMEOUT,
    )
    .expect("direct call");
    let routed = client::call(router.addr(), "POST", "/simulate", &to_casualty, TIMEOUT)
        .expect("routed call");
    assert_eq!(routed.status, 200, "{}", routed.body);
    assert_eq!(routed.body, direct.body, "replacement bytes differ");
    assert_eq!(directory.breaker(1), BreakerState::Closed);
    assert!(router.shard_healthy(1));
    let health = client::call(router.addr(), "GET", "/healthz", "", TIMEOUT).expect("healthz");
    assert!(
        health.body.contains(r#""status":"ok""#),
        "breaker closed must restore ok: {}",
        health.body
    );

    client::call(router.addr(), "POST", "/shutdown", "", TIMEOUT).expect("drain");
    router.join();
    survivor.join();
    replacement.join();
}

#[test]
fn router_shutdown_relays_the_drain_to_every_shard() {
    let shards = [uncached_shard(), uncached_shard()];
    let router = Router::start(RouterConfig {
        shards: vec![shards[0].addr(), shards[1].addr()],
        ..RouterConfig::default()
    })
    .expect("router boots");

    let drain = client::call(router.addr(), "POST", "/shutdown", "", TIMEOUT).expect("drain");
    assert_eq!(drain.status, 200);
    // Both Server::join calls return only because the relayed shutdown
    // drained each shard; a missed relay would hang this test.
    router.join();
    for shard in shards {
        shard.join();
    }
}
