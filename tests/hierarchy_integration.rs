//! Integration: Section 5's two-level findings on real (synthetic) workload
//! streams rather than micro-patterns.

use dynex::{DeCache, DeHierarchy, HitLastStrategy};
use dynex_cache::{run_addrs, CacheConfig, CacheSim, DirectMapped, TwoLevel};
use dynex_trace::filter;
use dynex_workload::spec;

const REFS: usize = 1_500_000;

fn instr_addrs(name: &str) -> Vec<u32> {
    let p = spec::profile(name).expect("built-in profile");
    filter::instructions(p.trace(REFS).iter())
        .map(|a| a.addr())
        .collect()
}

fn l1() -> CacheConfig {
    CacheConfig::direct_mapped(32 * 1024, 4).unwrap()
}

fn l2(ratio: u32) -> CacheConfig {
    CacheConfig::direct_mapped(32 * 1024 * ratio, 4).unwrap()
}

/// "If the L2 cache is the same size as the L1 cache, the assume-hit option
/// gives no improvement since the cache degenerates to conventional
/// direct-mapped behavior."
#[test]
fn assume_hit_at_ratio_one_equals_conventional() {
    for name in ["gcc", "doduc"] {
        let addrs = instr_addrs(name);
        let mut conventional = DirectMapped::new(l1());
        let dm = run_addrs(&mut conventional, addrs.iter().copied());
        let mut h = DeHierarchy::new(l1(), l2(1), HitLastStrategy::AssumeHit).unwrap();
        let de = run_addrs(&mut h, addrs.iter().copied());
        assert_eq!(dm.misses(), de.misses(), "{name}");
    }
}

/// "With all three schemes, most of the performance is achieved as long as
/// the L2 cache is at least 4 times as large as the L1 cache."
#[test]
fn four_x_l2_captures_most_of_the_benefit() {
    for strategy in [HitLastStrategy::AssumeHit, HitLastStrategy::AssumeMiss] {
        let mut at_4x = 0.0;
        let mut at_64x = 0.0;
        let mut dm_rate = 0.0;
        for name in ["gcc", "doduc", "spice", "fpppp"] {
            let addrs = instr_addrs(name);
            let mut conventional = DirectMapped::new(l1());
            dm_rate += run_addrs(&mut conventional, addrs.iter().copied()).miss_rate_percent();
            let mut small = DeHierarchy::new(l1(), l2(4), strategy).unwrap();
            at_4x += run_addrs(&mut small, addrs.iter().copied()).miss_rate_percent();
            let mut big = DeHierarchy::new(l1(), l2(64), strategy).unwrap();
            at_64x += run_addrs(&mut big, addrs.iter().copied()).miss_rate_percent();
        }
        let benefit_4x = dm_rate - at_4x;
        let benefit_64x = dm_rate - at_64x;
        assert!(benefit_64x > 0.0, "{strategy}: 64x L2 must help");
        assert!(
            benefit_4x >= 0.75 * benefit_64x,
            "{strategy}: 4x L2 should capture most of the 64x benefit \
             ({benefit_4x:.2} vs {benefit_64x:.2} miss-rate points)"
        );
    }
}

/// Exclusive strategies reduce L2 misses relative to the conventional
/// hierarchy; the inclusive one does not (Figures 8–9).
#[test]
fn exclusion_lowers_l2_misses() {
    let mut conventional_l2 = 0u64;
    let mut assume_hit_l2 = 0u64;
    let mut assume_miss_l2 = 0u64;
    let mut hashed_l2 = 0u64;
    for name in ["gcc", "spice", "doduc"] {
        let addrs = instr_addrs(name);
        let mut base = TwoLevel::new(DirectMapped::new(l1()), DirectMapped::new(l2(2)));
        run_addrs(&mut base, addrs.iter().copied());
        conventional_l2 += base.hierarchy_stats().l2.misses();

        for (strategy, counter) in [
            (HitLastStrategy::AssumeHit, &mut assume_hit_l2),
            (HitLastStrategy::AssumeMiss, &mut assume_miss_l2),
            (HitLastStrategy::Hashed { bits_per_line: 4 }, &mut hashed_l2),
        ] {
            let mut h = DeHierarchy::new(l1(), l2(2), strategy).unwrap();
            run_addrs(&mut h, addrs.iter().copied());
            *counter += h.hierarchy_stats().l2.misses();
        }
    }
    assert!(
        assume_miss_l2 < conventional_l2,
        "assume-miss must lower L2 misses: {assume_miss_l2} vs {conventional_l2}"
    );
    assert!(
        hashed_l2 < conventional_l2,
        "hashed must lower L2 misses: {hashed_l2} vs {conventional_l2}"
    );
    // Inclusive assume-hit tracks the conventional hierarchy closely.
    let drift =
        (assume_hit_l2 as f64 - conventional_l2 as f64).abs() / conventional_l2.max(1) as f64;
    assert!(
        drift < 0.25,
        "assume-hit should track conventional L2 misses, drift {drift:.2}"
    );
}

/// A huge L2 under assume-miss reproduces the single-level DE cache with a
/// perfect hit-last store, reference for reference.
#[test]
fn huge_l2_assume_miss_matches_single_level_de() {
    let addrs = instr_addrs("espresso");
    let mut h = DeHierarchy::new(l1(), l2(64), HitLastStrategy::AssumeMiss).unwrap();
    let mut single = DeCache::new(l1());
    for &a in &addrs {
        assert_eq!(h.access(a), single.access(a));
    }
}
